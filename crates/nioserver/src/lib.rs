//! `nioserver` — the live event-driven HTTP server (the paper's "nio"
//! server, in Rust).
//!
//! Architecture, faithful to the paper's description: **one acceptor
//! thread** blocks on the listen socket and hands accepted connections to
//! **`workers` worker threads**, each running a readiness-selection loop
//! over its share of the connections with strictly non-blocking I/O. A
//! worker never blocks on a socket: a full send buffer simply re-arms the
//! connection for writability and the worker moves on to the next ready key
//! — the "sharing the network resource in a more fair way between clients"
//! behaviour the paper measures.
//!
//! By default the server never applies an inactivity timeout to its clients
//! (it has no thread bound to them to reclaim), which is why it produces
//! zero connection-reset errors in figure 3(b). That is *policy*, not
//! architecture: [`LifecyclePolicy`] can arm a keep-alive idle timeout
//! (reproducing httpd2's reset stream from this same binary), a header-read
//! deadline answered with `408 Request Timeout` (anti-slow-loris), and a
//! write-stall deadline for clients that never drain their socket — all
//! driven by one wall-clock [`reactor::DeadlineWheel`] per worker.
//!
//! Accept-path architectures ([`faults::AcceptMode`]): the default
//! `Handoff` mode is the paper's nio — one acceptor thread distributing to
//! workers over channels. `Sharded` mode gives every worker its own
//! `SO_REUSEPORT` listener and the worker accepts directly in its selector
//! loop: no acceptor thread, no channel transfer, no per-accept lock, no
//! cross-thread wake. Both modes run the same admission defenses on the
//! accept path, and a crashed shard's listener fds are adopted by a
//! surviving worker (preserving their kernel accept queues) so the port
//! never silently loses a hash share.
//!
//! Robustness layer: the accept path sheds load above `shed_watermark` open
//! connections, refuses with `503 Connection: close` above the hard
//! `max_conns` cap, keeps an fd headroom reserve (EMFILE/ENFILE answered
//! with backoff instead of a spinning or dying accept loop), and survives
//! worker crashes by re-routing to the remaining workers;
//! [`NioServer::shutdown_graceful`] drains — idle connections close
//! immediately, in-flight responses finish, and whatever is still unflushed
//! at the deadline is cut and reported as aborted. The
//! [`faults::FaultTarget`] hooks stall accepts and crash/restart workers
//! under a fault plan. Every deliberate teardown is recorded in a typed
//! [`obs::LiveEnds`] tally.

pub use faults::AcceptMode;
pub use reactor::{io_uring_available, BackendKind, BACKEND_ENV};

use connslab::{Handle, Slab};
use faults::DrainReport;
use httpcore::{
    ContentStore, HeadPool, LifecyclePolicy, Method, ParseError, ParseOutcome, ReplyQueue,
    RequestParser, RequestPool, Status, Version,
};
use obs::{EndCause, GaugeKind, LiveEnds, LiveGauges, ShardCell, ShardGauges, Stage, StageHists};
use parking_lot::Mutex;
use reactor::backend::{Backend, Cqe, CqeKind, SubmitError};
use reactor::{DeadlineWheel, Interest, Token, Waker};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone)]
pub struct NioConfig {
    /// Worker (selector) threads. The paper's headline: 1–2 suffice.
    pub workers: usize,
    /// I/O engine per worker: readiness (`Epoll`, `Poll` — the paper's
    /// selector pair) or completion (`MockCompletion`, `IoUring`) semantics,
    /// all driven through one event-loop body.
    pub backend: BackendKind,
    /// How connections reach a worker: `Handoff` (one acceptor thread, the
    /// paper's nio) or `Sharded` (per-worker `SO_REUSEPORT` listeners).
    pub accept: AcceptMode,
    /// Load shedding: refuse new connections (abortive close on accept)
    /// while at least this many connections are open. None = admit all.
    pub shed_watermark: Option<u64>,
    /// Connection-lifecycle policy: idle/header/write-stall deadlines plus
    /// accept-path defenses. The default is the paper's nio (no timeouts).
    pub lifecycle: LifecyclePolicy,
    /// Content to serve.
    pub content: Arc<ContentStore>,
}

/// Live counters, shared with the handle.
#[derive(Debug, Default)]
pub struct NioStats {
    pub accepted: AtomicU64,
    pub requests: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub parse_errors: AtomicU64,
    /// Connections refused by the load-shedding watermark, the `max_conns`
    /// cap, or the fd reserve.
    pub refused: AtomicU64,
    /// Transient `accept()` errors survived (EMFILE/ENFILE/ECONNABORTED/
    /// EINTR and friends) — a healthy accept loop under attack shows these
    /// climbing while `accepted` keeps climbing too.
    pub accept_errors: AtomicU64,
    /// Worker threads currently running (drops when a fault crashes one).
    pub alive_workers: AtomicU64,
    /// Fault injections consumed: workers that crashed on request.
    pub worker_crashes: AtomicU64,
    /// Full O(open) drain sweeps performed across all workers. The drain
    /// protocol bounds this at one per worker — the sweep when the drain
    /// begins, which also collects in-flight survivors into a pending list;
    /// the deadline cut walks only that list — regardless of how many idle
    /// connections are open. Tests pin that bound.
    pub drain_full_sweeps: AtomicU64,
}

/// Shared control state: shutdown/drain flags and fault hooks.
#[derive(Default)]
struct NioCtl {
    stop: AtomicBool,
    draining: AtomicBool,
    accepts_stalled: AtomicBool,
    /// Pending crash requests; a worker consuming one exits.
    crash_tokens: AtomicU64,
    drained: AtomicU64,
    aborted: AtomicU64,
    drain_deadline: Mutex<Option<Instant>>,
    /// Sharded mode: listener fds surrendered by crashed workers, awaiting
    /// adoption by a survivor. Adopting the live fd (rather than rebinding)
    /// preserves the dead shard's kernel accept queue, so connections the
    /// kernel already completed are served, not reset.
    orphan_listeners: Mutex<Vec<TcpListener>>,
    /// Bumped whenever `orphan_listeners` gains entries; workers compare it
    /// against a local copy so the no-orphan steady state costs one relaxed
    /// load per loop, no lock.
    orphan_epoch: AtomicU64,
}

/// One worker's handover channel, shared with the acceptor (and with
/// `restart_worker`, which appends fresh links).
#[derive(Clone)]
struct WorkerLink {
    /// Stable identity, so the acceptor can delete a dead link from the
    /// shared list after discovering the death on its private snapshot.
    id: u64,
    tx: crossbeam::channel::Sender<TcpStream>,
    waker: Arc<Waker>,
}

/// The shared worker-link list plus a change epoch. The acceptor's hot path
/// round-robins over a private snapshot and re-reads the list only when the
/// epoch moves (worker spawn/crash) — the per-accept `links.lock()` this
/// replaces was the one piece of shared mutable state on the handoff path.
///
/// The list itself is copy-on-write behind an `Arc`: mutations (spawn/crash,
/// rare) build a fresh vector and swap the pointer, so `snapshot` and
/// `wake_all` hold the lock only for an `Arc` clone — O(1), never O(workers)
/// — and the actual wakes happen outside any lock. Samplers and fault
/// injectors poking every worker can never stall the accept path.
#[derive(Default)]
struct Links {
    list: Mutex<Arc<Vec<WorkerLink>>>,
    epoch: AtomicU64,
}

impl Links {
    fn update(&self, f: impl FnOnce(&mut Vec<WorkerLink>)) {
        let mut guard = self.list.lock();
        let mut next = (**guard).clone();
        f(&mut next);
        *guard = Arc::new(next);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn push(&self, link: WorkerLink) {
        self.update(|list| list.push(link));
    }

    fn remove(&self, id: u64) {
        self.update(|list| list.retain(|l| l.id != id));
    }

    fn len(&self) -> usize {
        self.list.lock().len()
    }

    /// (epoch-at-read, shared snapshot of the list). The epoch is read
    /// *before* the snapshot: a concurrent change can only make the caller
    /// re-snapshot once more than necessary, never miss an update.
    fn snapshot(&self) -> (u64, Arc<Vec<WorkerLink>>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        (epoch, Arc::clone(&self.list.lock()))
    }

    fn wake_all(&self) {
        // O(1) under the lock: clone the Arc, wake outside.
        let list = Arc::clone(&self.list.lock());
        for link in list.iter() {
            link.waker.wake();
        }
    }
}

/// Everything a worker thread owns at birth. In handoff mode only the
/// channel half is populated; in sharded mode the worker also gets its own
/// `SO_REUSEPORT` listener and per-shard gauge cell.
struct WorkerSeat {
    rx: crossbeam::channel::Receiver<TcpStream>,
    waker: Arc<Waker>,
    listener: Option<TcpListener>,
    cell: Option<Arc<ShardCell>>,
}

/// Handle to a running server; dropping it stops the server.
pub struct NioServer {
    addr: SocketAddr,
    config: NioConfig,
    ctl: Arc<NioCtl>,
    stats: Arc<NioStats>,
    gauges: Arc<LiveGauges>,
    ends: Arc<LiveEnds>,
    shards: Arc<ShardGauges>,
    hists: Arc<Mutex<StageHists>>,
    links: Arc<Links>,
    next_link_id: AtomicU64,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl NioServer {
    /// Bind `127.0.0.1:0` and start the workers (plus, in handoff mode, the
    /// acceptor thread; in sharded mode every worker brings its own
    /// `SO_REUSEPORT` listener to the same address instead).
    pub fn start(config: NioConfig) -> io::Result<NioServer> {
        assert!(config.workers > 0);
        let (listener, addr) = match config.accept {
            AcceptMode::Handoff => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = l.local_addr()?;
                l.set_nonblocking(true)?;
                (l, addr)
            }
            AcceptMode::Sharded => bind_reuseport(None)?,
        };
        let server = NioServer {
            addr,
            config: config.clone(),
            ctl: Arc::new(NioCtl::default()),
            stats: Arc::new(NioStats::default()),
            gauges: Arc::new(LiveGauges::new()),
            ends: Arc::new(LiveEnds::new()),
            shards: Arc::new(ShardGauges::new()),
            hists: Arc::new(Mutex::new(StageHists::new())),
            links: Arc::new(Links::default()),
            next_link_id: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        };
        match config.accept {
            AcceptMode::Handoff => {
                for _ in 0..config.workers {
                    server.spawn_worker()?;
                }
                let ctl = Arc::clone(&server.ctl);
                let stats = Arc::clone(&server.stats);
                let gauges = Arc::clone(&server.gauges);
                let ends = Arc::clone(&server.ends);
                let links = Arc::clone(&server.links);
                let cfg = config;
                server.threads.lock().push(
                    std::thread::Builder::new()
                        .name("nio-acceptor".to_string())
                        .spawn(move || {
                            acceptor_loop(cfg, listener, links, ctl, stats, gauges, ends)
                        })
                        .expect("spawn acceptor"),
                );
            }
            AcceptMode::Sharded => {
                // The bootstrap listener seeds shard 0; the remaining
                // workers bind their own listeners to the same address.
                server.spawn_worker_seated(Some(listener))?;
                for _ in 1..config.workers {
                    server.spawn_worker()?;
                }
            }
        }
        Ok(server)
    }

    fn spawn_worker(&self) -> io::Result<()> {
        let listener = match self.config.accept {
            AcceptMode::Handoff => None,
            AcceptMode::Sharded => Some(bind_reuseport(Some(self.addr))?.0),
        };
        self.spawn_worker_seated(listener)
    }

    fn spawn_worker_seated(&self, listener: Option<TcpListener>) -> io::Result<()> {
        let w = self.links.len();
        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        let waker = Arc::new(Waker::new()?);
        let id = self.next_link_id.fetch_add(1, Ordering::Relaxed);
        self.links.push(WorkerLink {
            id,
            tx,
            waker: Arc::clone(&waker),
        });
        let cell = listener.as_ref().map(|_| self.shards.register_shard());
        let seat = WorkerSeat {
            rx,
            waker,
            listener,
            cell,
        };
        let links = Arc::clone(&self.links);
        let ctl = Arc::clone(&self.ctl);
        let stats = Arc::clone(&self.stats);
        let gauges = Arc::clone(&self.gauges);
        let ends = Arc::clone(&self.ends);
        let hists = Arc::clone(&self.hists);
        let cfg = self.config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("nio-worker-{w}"))
            .spawn(move || worker_loop(cfg, seat, links, ctl, stats, gauges, ends, hists))?;
        self.threads.lock().push(handle);
        Ok(())
    }

    /// Address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &NioStats {
        &self.stats
    }

    /// Shared handle to the live counters, for reading after `shutdown` /
    /// `shutdown_graceful` consume the server.
    pub fn stats_arc(&self) -> Arc<NioStats> {
        Arc::clone(&self.stats)
    }

    /// Lock-free gauge registry (open connections, ready-set size,
    /// accept-backlog residence). Hand it to [`obs::spawn_sampler`] to
    /// collect a periodic [`obs::GaugeLog`] while the server runs.
    pub fn gauges(&self) -> Arc<LiveGauges> {
        Arc::clone(&self.gauges)
    }

    /// Typed connection-termination tally (idle/header/write-stall
    /// timeouts, refusals, fd-reserve refusals, parse-limit closes).
    pub fn ends(&self) -> Arc<LiveEnds> {
        Arc::clone(&self.ends)
    }

    /// Per-shard accepted/occupancy gauges. Empty in handoff mode; one cell
    /// per worker-shard (plus one per restart) in sharded mode.
    pub fn shard_gauges(&self) -> Arc<ShardGauges> {
        Arc::clone(&self.shards)
    }

    /// Server-side per-stage latency histograms: parse/service/transfer
    /// burst durations measured inside the workers, merged into this shared
    /// sink as each worker exits. Clone the `Arc` before `shutdown` (which
    /// consumes the handle) to read the completed merge afterwards.
    pub fn stage_hists(&self) -> Arc<Mutex<StageHists>> {
        Arc::clone(&self.hists)
    }

    fn wake_workers(&self) {
        self.links.wake_all();
    }

    fn stop_and_join(&self) {
        self.ctl.stop.store(true, Ordering::SeqCst);
        self.wake_workers();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }

    /// Signal all threads to stop and join them. Open connections are cut.
    pub fn shutdown(self) {
        self.stop_and_join();
    }

    /// Graceful drain: stop accepting (the port is released, so new
    /// connections are refused), close idle connections immediately, finish
    /// flushing in-flight responses, and cut whatever is still unflushed at
    /// the deadline. Returns drained vs aborted connection counts.
    pub fn shutdown_graceful(self, deadline: Duration) -> DrainReport {
        *self.ctl.drain_deadline.lock() = Some(Instant::now() + deadline);
        self.ctl.draining.store(true, Ordering::SeqCst);
        self.wake_workers();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
        DrainReport {
            drained: self.ctl.drained.load(Ordering::SeqCst),
            aborted: self.ctl.aborted.load(Ordering::SeqCst),
        }
    }
}

impl Drop for NioServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl faults::FaultTarget for NioServer {
    fn stall_accepts(&self, on: bool) {
        self.ctl.accepts_stalled.store(on, Ordering::SeqCst);
        // Sharded workers only reconcile listener registration at the top
        // of a loop pass; poke them out of `select()` so the stall (and
        // the recovery) takes effect now, not up to a select-ceiling later.
        self.wake_workers();
    }

    fn crash_worker(&self) -> bool {
        if self.stats.alive_workers.load(Ordering::SeqCst) == 0 {
            return false;
        }
        self.ctl.crash_tokens.fetch_add(1, Ordering::SeqCst);
        self.wake_workers();
        true
    }

    fn restart_worker(&self) -> bool {
        self.spawn_worker().is_ok()
    }

    fn worker_count(&self) -> usize {
        self.config.workers
    }
}

/// Take one pending crash token, if any.
fn take_crash_token(ctl: &NioCtl) -> bool {
    ctl.crash_tokens
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Admission defenses shared by both accept paths: fd-reserve refusal,
/// `max_conns` → `503`, shed watermark → abortive close. Returns the
/// configured stream (nodelay, non-blocking, sized send buffer) when the
/// connection is admitted, `None` when it was refused (counters and
/// lifecycle tally already recorded).
#[allow(clippy::too_many_arguments)]
fn admit_stream(
    stream: TcpStream,
    cfg: &NioConfig,
    fd_limit: u64,
    stats: &NioStats,
    gauges: &LiveGauges,
    ends: &LiveEnds,
    refusal_head: &mut Vec<u8>,
    date: &str,
) -> Option<TcpStream> {
    // Fd headroom reserve: the accepted fd number tells us how close the
    // process is to RLIMIT_NOFILE (fds are allocated lowest-free). Inside
    // the reserve, refuse abortively — keeping this connection could starve
    // teardown plumbing.
    if cfg.lifecycle.fd_reserve > 0
        && stream.as_raw_fd() as u64 + cfg.lifecycle.fd_reserve >= fd_limit
    {
        stats.refused.fetch_add(1, Ordering::Relaxed);
        ends.record(EndCause::FdReserve);
        let _ = set_linger_zero(&stream);
        return None;
    }
    // Hard admission cap: refuse politely with a `503 Connection: close` so
    // well-behaved clients see an HTTP answer, not a silent drop.
    let open = gauges.get(GaugeKind::OpenConns);
    if cfg.lifecycle.max_conns.is_some_and(|cap| open >= cap) {
        stats.refused.fetch_add(1, Ordering::Relaxed);
        ends.record(EndCause::Refused);
        respond_unavailable(&stream, refusal_head, date);
        return None;
    }
    if cfg.shed_watermark.is_some_and(|w| open >= w) {
        // Admission control: abortive close so the client observes the
        // refusal immediately.
        stats.refused.fetch_add(1, Ordering::Relaxed);
        ends.record(EndCause::Refused);
        let _ = set_linger_zero(&stream);
        return None;
    }
    stats.accepted.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(true);
    // Kernel socket buffers from the policy: the send side defaults to
    // reply-sized (a whole response in one vectored write); both can be
    // trimmed to shrink kernel-side per-connection memory on frontier
    // ramps, or left `None` for the kernel's own sizing.
    if let Some(b) = cfg.lifecycle.send_buffer {
        let _ = set_sndbuf(&stream, b as i32);
    }
    if let Some(b) = cfg.lifecycle.recv_buffer {
        let _ = set_rcvbuf(&stream, b as i32);
    }
    Some(stream)
}

/// The single acceptor thread: accept and distribute, nothing else — the
/// reason connection-establishment time stays flat in figure 4. The hot
/// path routes over a private snapshot of the worker links; the shared list
/// is only re-read when its epoch moves (spawn/crash), so a steady-state
/// accept touches no lock at all.
fn acceptor_loop(
    cfg: NioConfig,
    listener: TcpListener,
    links: Arc<Links>,
    ctl: Arc<NioCtl>,
    stats: Arc<NioStats>,
    gauges: Arc<LiveGauges>,
    ends: Arc<LiveEnds>,
) {
    let mut next = 0usize;
    let fd_limit = rlimit_nofile();
    let (mut seen_epoch, mut snapshot) = links.snapshot();
    // EMFILE/ENFILE backoff: start at 1 ms, double up to 100 ms. A fixed
    // 1 ms sleep under fd exhaustion is a busy loop that starves the very
    // teardowns that would free fds.
    let mut exhaustion_backoff = Duration::from_millis(1);
    // Refusal plumbing: one reused head buffer and a ~1 s date cache, so a
    // storm of 503 refusals at the admission cap allocates nothing.
    let mut refusal_head: Vec<u8> = Vec::new();
    let mut date = httpcore::now_http_date();
    let mut date_refresh = std::time::Instant::now();
    while !ctl.stop.load(Ordering::Relaxed) && !ctl.draining.load(Ordering::Relaxed) {
        if date_refresh.elapsed() > Duration::from_secs(1) {
            date = httpcore::now_http_date();
            date_refresh = std::time::Instant::now();
        }
        // Server-stall fault window: the accept path freezes; SYNs queue in
        // the kernel backlog exactly as during a GC pause.
        if ctl.accepts_stalled.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                exhaustion_backoff = Duration::from_millis(1);
                let Some(stream) = admit_stream(
                    stream,
                    &cfg,
                    fd_limit,
                    &stats,
                    &gauges,
                    &ends,
                    &mut refusal_head,
                    &date,
                ) else {
                    continue;
                };
                // Round-robin across the snapshot. A closed channel means
                // that worker crashed: delete the dead link from the shared
                // list, re-snapshot, and re-route to the survivors instead
                // of taking the whole accept path down.
                if seen_epoch != links.epoch.load(Ordering::Acquire) {
                    (seen_epoch, snapshot) = links.snapshot();
                }
                gauges.add(GaugeKind::AcceptBacklog, 1);
                let mut stream = Some(stream);
                loop {
                    if snapshot.is_empty() {
                        // No workers left at all; the connection is lost.
                        gauges.sub(GaugeKind::AcceptBacklog, 1);
                        break;
                    }
                    let idx = next % snapshot.len();
                    match snapshot[idx].tx.send(stream.take().expect("stream consumed")) {
                        Ok(()) => {
                            snapshot[idx].waker.wake();
                            next += 1;
                            break;
                        }
                        Err(e) => {
                            stream = Some(e.0);
                            links.remove(snapshot[idx].id);
                            (seen_epoch, snapshot) = links.snapshot();
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => match e.raw_os_error() {
                // EINTR / ECONNABORTED: a signal or a peer that hung up
                // between SYN and accept — retry immediately, nothing is
                // wrong with the listener.
                Some(EINTR) | Some(ECONNABORTED) => {
                    stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                }
                // EMFILE / ENFILE: fd exhaustion. Pause-and-retry with
                // exponential backoff — teardowns elsewhere will free fds;
                // exiting here would silently kill the whole accept path.
                Some(EMFILE) | Some(ENFILE) => {
                    stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    ends.record(EndCause::FdReserve);
                    std::thread::sleep(exhaustion_backoff);
                    exhaustion_backoff =
                        (exhaustion_backoff * 2).min(Duration::from_millis(100));
                }
                _ => {
                    stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                }
            },
        }
    }
    // The listener drops here: during a drain, new connection attempts are
    // refused by the kernel from this point on.
}

/// Bind a `SO_REUSEPORT` TCP listener on loopback. `addr: None` picks an
/// ephemeral port (the bootstrap shard); `Some(addr)` joins an existing
/// reuseport group so the kernel hashes incoming connections across all
/// member listeners. The std library exposes no reuseport knob, so this
/// goes through the same raw-syscall idiom as `set_sndbuf` below.
fn bind_reuseport(addr: Option<SocketAddr>) -> io::Result<(TcpListener, SocketAddr)> {
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order (bytes as written).
        sin_addr: [u8; 4],
        sin_zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
        fn bind(sockfd: i32, addr: *const SockaddrIn, addrlen: u32) -> i32;
        fn listen(sockfd: i32, backlog: i32) -> i32;
        fn getsockname(sockfd: i32, addr: *mut SockaddrIn, addrlen: *mut u32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0x800;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // On any later failure the fd must not leak.
    let fail = |fd: i32| -> io::Error {
        let e = io::Error::last_os_error();
        unsafe { close(fd) };
        e
    };
    let one: i32 = 1;
    for opt in [SO_REUSEADDR, SO_REUSEPORT] {
        let r = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                &one as *const i32 as *const _,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if r < 0 {
            return Err(fail(fd));
        }
    }
    let port = addr.map_or(0, |a| a.port());
    let sa = SockaddrIn {
        sin_family: AF_INET as u16,
        sin_port: port.to_be(),
        sin_addr: [127, 0, 0, 1],
        sin_zero: [0; 8],
    };
    let r = unsafe { bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) };
    if r < 0 {
        return Err(fail(fd));
    }
    let r = unsafe { listen(fd, 1024) };
    if r < 0 {
        return Err(fail(fd));
    }
    let mut bound = SockaddrIn {
        sin_family: 0,
        sin_port: 0,
        sin_addr: [0; 4],
        sin_zero: [0; 8],
    };
    let mut len = std::mem::size_of::<SockaddrIn>() as u32;
    let r = unsafe { getsockname(fd, &mut bound, &mut len) };
    if r < 0 {
        return Err(fail(fd));
    }
    let local = SocketAddr::from((bound.sin_addr, u16::from_be(bound.sin_port)));
    let listener = unsafe { TcpListener::from_raw_fd(fd) };
    Ok((listener, local))
}

const EINTR: i32 = 4;
const EMFILE: i32 = 24;
const ENFILE: i32 = 23;
const ECONNABORTED: i32 = 103;

/// Best-effort `503 Service Unavailable, Connection: close` on a refused
/// connection. The stream is still blocking here and the head is far
/// smaller than any socket buffer, so the write cannot stall the acceptor.
/// The head renders into caller-owned scratch and the date string is the
/// caller's cached copy: a refusal storm at the admission cap allocates
/// nothing per connection.
fn respond_unavailable(stream: &TcpStream, head: &mut Vec<u8>, date: &str) {
    use std::io::Write;
    head.clear();
    httpcore::write_head(
        head,
        Version::Http11,
        Status::ServiceUnavailable,
        0,
        false,
        date,
    );
    let mut w = stream;
    let _ = w.write_all(head);
}

/// Current `RLIMIT_NOFILE` soft limit (u64::MAX when the query fails, which
/// effectively disables the reserve rather than refusing everything).
fn rlimit_nofile() -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    let mut lim = Rlimit { cur: 0, max: 0 };
    let r = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if r == 0 {
        lim.cur
    } else {
        u64::MAX
    }
}

/// Per-connection worker-side state.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Staged output: (head, arena-slice) response segments, flushed
    /// zero-copy via `write_vectored`.
    out: ReplyQueue,
    /// Close once the output drains (HTTP/1.0 or Connection: close or 400).
    close_after_flush: bool,
    /// The peer sent FIN (`shutdown(SHUT_WR)` or close): no more request
    /// bytes will ever arrive, but replies already owed must still be
    /// flushed before the clean close. Read interest is dropped — a
    /// level-triggered selector would otherwise re-report the EOF on
    /// every pass while the flush is still in flight.
    peer_half_closed: bool,
    /// Interest currently registered with the selector — cached so the hot
    /// path only pays a `reregister` syscall on an actual change. Readiness
    /// backends only; completion backends imply interest by submitted ops.
    registered: Interest,
    /// Completion backends: a read op is in flight (at most one per
    /// connection, mirroring read interest on the readiness path).
    read_inflight: bool,
    /// Completion backends: a write op is in flight (at most one per
    /// connection). While set, the submitted chunk's bytes are still
    /// staged in `out` — [`ReplyQueue::consume`] runs only on `WriteDone`.
    write_inflight: bool,
    /// Last observed progress (read bytes or write drain), ns since the
    /// worker epoch. The idle deadline slides from here.
    last_activity_ns: u64,
    /// Last observed *write* progress (or output first becoming pending),
    /// ns since the worker epoch. The write-stall deadline slides from
    /// here, never from reads — a peer that keeps pipelining requests
    /// while refusing to drain replies must not refresh it.
    last_write_progress_ns: u64,
    /// Total bytes ever flushed to this socket; compared across a wakeup
    /// to detect write progress for the write-stall clock.
    bytes_flushed: u64,
    /// When the first byte of the current request head arrived (0 = no
    /// partial head pending). The header deadline is absolute from here —
    /// a slow-loris dribble must NOT slide it.
    head_start_ns: u64,
    /// Earliest wheel entry armed for this connection (`u64::MAX` = none).
    /// Wheel entries are never cancelled; a popped entry re-checks the
    /// connection's real deadline and re-arms or expires accordingly.
    armed_until: u64,
}

impl Conn {
    fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    fn interest(&self) -> Interest {
        if self.peer_half_closed {
            // Nothing left to read — the connection only lives to drain
            // its owed replies.
            Interest::WRITABLE
        } else if self.wants_write() {
            Interest::BOTH
        } else {
            Interest::READABLE
        }
    }

    /// Nothing owed and nothing half-received: safe to drain-close cleanly.
    fn drain_idle(&self) -> bool {
        !self.wants_write() && self.parser.buffered() == 0
    }

    /// The connection's current lifecycle deadline under `policy`, given
    /// its state: write-stall while output is pending, header deadline
    /// while a partial head is buffered, idle otherwise. `None` when the
    /// applicable policy knob is off.
    fn next_due(&self, policy: &LifecyclePolicy) -> Option<(u64, EndCause)> {
        let ns = |d: Duration| d.as_nanos() as u64;
        if self.wants_write() {
            policy
                .write_stall_timeout
                .map(|d| (self.last_write_progress_ns + ns(d), EndCause::WriteStall))
        } else if self.parser.buffered() > 0 {
            policy
                .header_timeout
                .map(|d| (self.head_start_ns + ns(d), EndCause::HeaderTimeout))
        } else {
            policy
                .idle_timeout
                .map(|d| (self.last_activity_ns + ns(d), EndCause::IdleTimeout))
        }
    }
}

/// Arm (or tighten) the wheel entry for `token` to the connection's current
/// deadline. Entries are lazy: an in-flight entry that fires early simply
/// re-checks and re-arms, so only a *tighter* deadline needs a new entry.
fn rearm_deadline(
    wheel: &mut DeadlineWheel<usize>,
    conn: &mut Conn,
    token: usize,
    policy: &LifecyclePolicy,
) {
    if let Some((due, _)) = conn.next_due(policy) {
        if due < conn.armed_until {
            wheel.schedule(due, token);
            conn.armed_until = due;
        }
    }
}

/// Token 0 is reserved for the waker. A connection token is its packed slab
/// handle (`Handle::raw`), whose low 32 bits are a sequence that starts at 1
/// and skips 0 — a connection token can never collide with the waker's.
const WAKER_TOKEN: Token = Token(0);

/// Sharded mode: listener tokens live in the top half of the token space.
/// Connection tokens are packed slab handles — slot index in the high bits,
/// capped at `connslab::MAX_SLOTS = 2^30` slots — so every connection token
/// is below 2^62 and the two ranges can never meet. `LISTENER_TOKEN_BASE +
/// i` is the worker's `listeners[i]`.
const LISTENER_TOKEN_BASE: usize = usize::MAX / 2;

/// A worker's accept shard: its `SO_REUSEPORT` listeners (one at birth,
/// more after adopting a crashed peer's), its per-shard gauge cell, and the
/// listener-registration state machine (deregistered during accept stalls
/// and EMFILE backoff so a level-triggered selector doesn't busy-spin on a
/// listener we refuse to accept from).
struct ShardState {
    listeners: Vec<TcpListener>,
    cell: Arc<ShardCell>,
    /// Listener fds currently registered with the selector.
    registered: bool,
    /// EMFILE/ENFILE backoff: listeners stay deregistered until this
    /// instant so teardowns elsewhere can free fds.
    resume_at: Option<Instant>,
    backoff: Duration,
    /// Local copy of `NioCtl::orphan_epoch`; a mismatch means a crashed
    /// peer surrendered listeners for adoption.
    seen_orphan_epoch: u64,
    fd_limit: u64,
}

/// Register an admitted stream with the selector and install its `Conn`
/// state (shared by the handoff channel-adopt path and the sharded direct
/// accept). The connection's selector token is its packed slab handle, so
/// event dispatch is an O(1) indexed load with a generation check — a stale
/// event for a closed-and-reused slot misses instead of aliasing the new
/// occupant. Returns `None` when selector registration failed (the slot is
/// reclaimed and the stream drops, closing the socket).
#[allow(clippy::too_many_arguments)]
fn install_conn(
    stream: TcpStream,
    backend: &mut dyn Backend,
    conns: &mut Slab<Conn>,
    gauges: &LiveGauges,
    deadlines_on: bool,
    epoch: Instant,
    wheel: &mut DeadlineWheel<usize>,
    policy: &LifecyclePolicy,
) -> Option<Handle> {
    let fd = stream.as_raw_fd();
    let handle = conns.insert(Conn {
        stream,
        parser: RequestParser::new(),
        out: ReplyQueue::new(),
        close_after_flush: false,
        peer_half_closed: false,
        registered: Interest::READABLE,
        read_inflight: false,
        write_inflight: false,
        last_activity_ns: 0,
        last_write_progress_ns: 0,
        bytes_flushed: 0,
        head_start_ns: 0,
        armed_until: u64::MAX,
    });
    if backend
        .register_conn(fd, Token(handle.raw() as usize), Interest::READABLE)
        .is_err()
    {
        conns.remove(handle);
        return None;
    }
    gauges.add(GaugeKind::OpenConns, 1);
    gauges.add(GaugeKind::RegisteredConns, 1);
    if deadlines_on {
        let conn = conns.get_mut(handle).expect("just inserted");
        conn.last_activity_ns = epoch.elapsed().as_nanos() as u64;
        rearm_deadline(wheel, conn, handle.raw() as usize, policy);
    }
    Some(handle)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    cfg: NioConfig,
    seat: WorkerSeat,
    links: Arc<Links>,
    ctl: Arc<NioCtl>,
    stats: Arc<NioStats>,
    gauges: Arc<LiveGauges>,
    ends: Arc<LiveEnds>,
    hists: Arc<Mutex<StageHists>>,
) {
    let WorkerSeat {
        rx,
        waker,
        listener,
        cell,
    } = seat;
    stats.alive_workers.fetch_add(1, Ordering::SeqCst);
    // One backend per worker: readiness (epoll/poll `Ready` events, worker
    // does its own non-blocking I/O) or completion (submit/reap with
    // backend-owned buffers). `IoUring` may fall back to epoll readiness
    // when the kernel refuses the ring — `is_completion` reflects what
    // actually runs.
    let mut backend: Box<dyn Backend> = reactor::backend::create(cfg.backend);
    let completion = backend.is_completion();
    backend
        .register_poll(waker.read_fd(), WAKER_TOKEN, Interest::READABLE)
        .expect("register waker");
    // Sharded mode: this worker is a shard. Its listener starts
    // deregistered; the reconcile step below registers it on the first loop
    // pass (and handles stall/backoff/drain transitions thereafter).
    let mut shard: Option<ShardState> = listener.map(|l| ShardState {
        listeners: vec![l],
        cell: cell.expect("sharded worker has a gauge cell"),
        registered: false,
        resume_at: None,
        backoff: Duration::from_millis(1),
        seen_orphan_epoch: 0,
        fd_limit: rlimit_nofile(),
    });
    // Connection states live in a generation-tagged slab indexed by the low
    // bits of the selector token: dispatch is a bounds-checked array load,
    // and per-connection storage is dense — no hash table, no rehash spikes
    // at a million entries.
    let mut conns: Slab<Conn> = Slab::new();
    let mut events: Vec<Cqe> = Vec::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    // Completion-path staging: `write_scratch` receives `ReplyQueue::peek`
    // chunks for `submit_write`; `pump_retry` holds tokens whose submission
    // hit a full SQ, retried after the next wait drains it.
    let mut write_scratch: Vec<u8> = Vec::new();
    let mut pump_retry: Vec<Token> = Vec::new();
    let mut date = httpcore::now_http_date();
    let mut date_refresh = std::time::Instant::now();
    let mut last_ready = 0usize;
    // Per-worker buffer pools: response heads and parser scratch recycle
    // through these instead of sitting as per-connection spares — at a
    // million mostly-idle connections the spares, not the live traffic,
    // would dominate RSS.
    let mut head_pool = HeadPool::new();
    let mut req_pool = RequestPool::new();
    // Refusal scratch for the sharded accept path (see `acceptor_loop`).
    let mut refusal_head: Vec<u8> = Vec::new();
    // Cached copy of the drain deadline (fixed once draining starts), and
    // whether this worker has already paid its drain-start full sweep.
    // `drain_pending` holds the handles that survived that sweep (plus any
    // connection installed mid-drain): the deadline cut walks only this
    // list — O(in-flight at drain start), not O(open) — and a handle whose
    // connection already closed is stale by generation, skipped for free.
    let mut drain_deadline: Option<Instant> = None;
    let mut drain_swept = false;
    let mut drain_pending: Vec<Handle> = Vec::new();
    // Per-worker stage histograms: recorded locally (nothing shared on the
    // hot path), merged into the server-wide sink when the worker exits.
    let mut local_hists = StageHists::new();
    // Per-worker deadline wheel, keyed by connection token (tokens are
    // never reused, so a popped entry whose connection is gone is simply
    // stale — no cancellation bookkeeping on the hot path). When the policy
    // arms no deadline at all, the wheel is never touched: the paper
    // configuration pays nothing.
    let epoch = Instant::now();
    let deadlines_on = cfg.lifecycle.idle_timeout.is_some()
        || cfg.lifecycle.header_timeout.is_some()
        || cfg.lifecycle.write_stall_timeout.is_some();
    let mut wheel: DeadlineWheel<usize> = DeadlineWheel::new();

    while !ctl.stop.load(Ordering::Relaxed) {
        if take_crash_token(&ctl) {
            // Crash: this worker dies now. Its connections are dropped on
            // the floor (streams close on drop); only the gauge bookkeeping
            // is repaired so the survivors' view stays consistent. A shard
            // additionally surrenders its listener fds for adoption — the
            // kernel keeps their accept queues intact, so connections it
            // already completed against this shard are served by the
            // adopter, not reset.
            stats.worker_crashes.fetch_add(1, Ordering::SeqCst);
            let n = conns.len() as u64;
            gauges.sub(GaugeKind::OpenConns, n);
            gauges.sub(GaugeKind::RegisteredConns, n);
            gauges.sub(GaugeKind::ReadySetSize, last_ready as u64);
            if let Some(shard) = shard.take() {
                shard.cell.close_many(n);
                if !shard.listeners.is_empty() {
                    ctl.orphan_listeners.lock().extend(shard.listeners);
                    ctl.orphan_epoch.fetch_add(1, Ordering::Release);
                    links.wake_all();
                }
            }
            stats.alive_workers.fetch_sub(1, Ordering::SeqCst);
            hists.lock().merge(&local_hists);
            return;
        }
        // Adopt freshly accepted connections (handoff mode; a shard's rx
        // never receives anything). A stream that was already in the channel
        // when the drain-start sweep ran would otherwise dodge the deadline
        // cut — joining `drain_pending` keeps it cuttable.
        while let Ok(stream) = rx.try_recv() {
            gauges.sub(GaugeKind::AcceptBacklog, 1);
            if let Some(h) = install_conn(
                stream,
                backend.as_mut(),
                &mut conns,
                &gauges,
                deadlines_on,
                epoch,
                &mut wheel,
                &cfg.lifecycle,
            ) {
                if drain_swept {
                    drain_pending.push(h);
                }
                if completion {
                    // Arm the first read now — a completion backend reports
                    // nothing for a connection with no op in flight.
                    let token = Token(h.raw() as usize);
                    if let Some(conn) = conns.get_mut(h) {
                        pump_conn(
                            backend.as_mut(),
                            conn,
                            token,
                            &mut write_scratch,
                            &mut pump_retry,
                        );
                    }
                }
            }
        }
        // Shard housekeeping: adopt orphaned listeners from crashed peers,
        // then reconcile listener registration with the stall/drain/backoff
        // state (deregistering instead of ignoring readiness — a
        // level-triggered selector would otherwise spin on a ready listener
        // we refuse to accept from).
        if let Some(s) = shard.as_mut() {
            let drain_now = ctl.draining.load(Ordering::Relaxed);
            let oe = ctl.orphan_epoch.load(Ordering::Acquire);
            if oe != s.seen_orphan_epoch {
                s.seen_orphan_epoch = oe;
                if !drain_now {
                    let mut orphans = ctl.orphan_listeners.lock();
                    for l in orphans.drain(..) {
                        if s.registered {
                            let tok = Token(LISTENER_TOKEN_BASE + s.listeners.len());
                            let _ = backend.register_poll(l.as_raw_fd(), tok, Interest::READABLE);
                        }
                        s.listeners.push(l);
                    }
                }
            }
            if drain_now && !s.listeners.is_empty() {
                // Drain: drop the listeners so the kernel refuses new
                // connections from here on (the handoff analogue is the
                // acceptor thread exiting and dropping the listen socket).
                for l in &s.listeners {
                    let _ = backend.deregister(l.as_raw_fd());
                }
                s.listeners.clear();
                s.registered = false;
            }
            let stalled = ctl.accepts_stalled.load(Ordering::Relaxed);
            let backing_off = s.resume_at.is_some_and(|t| Instant::now() < t);
            let want = !stalled && !backing_off && !s.listeners.is_empty();
            if want != s.registered {
                for (i, l) in s.listeners.iter().enumerate() {
                    if want {
                        let tok = Token(LISTENER_TOKEN_BASE + i);
                        let _ = backend.register_poll(l.as_raw_fd(), tok, Interest::READABLE);
                    } else {
                        let _ = backend.deregister(l.as_raw_fd());
                    }
                }
                s.registered = want;
                if want {
                    s.resume_at = None;
                }
            }
        }

        if date_refresh.elapsed() > Duration::from_secs(1) {
            date = httpcore::now_http_date();
            date_refresh = std::time::Instant::now();
        }

        events.clear();
        // The waker interrupts this wait the moment a connection is handed
        // over; the 100 ms ceiling only bounds shutdown latency.
        let _ = backend.wait(&mut events, Some(Duration::from_millis(100)));
        // Publish this worker's ready-set size; add-then-sub keeps the
        // shared (multi-worker) total from transiently saturating at zero.
        let ready = events.iter().filter(|e| e.token != WAKER_TOKEN).count();
        gauges.add(GaugeKind::ReadySetSize, ready as u64);
        gauges.sub(GaugeKind::ReadySetSize, last_ready as u64);
        last_ready = ready;
        let draining = ctl.draining.load(Ordering::Relaxed);
        // One clock read per wakeup serves every deadline decision below.
        let now_ns = if deadlines_on {
            epoch.elapsed().as_nanos() as u64
        } else {
            0
        };
        // SQ-full backpressure: `wait` just drained the submission queue,
        // so tokens parked by an earlier refused submission pump again now.
        // A token whose connection died in the meantime is stale by
        // generation and skips for free.
        if !pump_retry.is_empty() {
            let parked = std::mem::take(&mut pump_retry);
            for token in parked {
                if let Some(conn) = conns.get_mut(Handle::from_raw(token.0 as u64)) {
                    pump_conn(
                        backend.as_mut(),
                        conn,
                        token,
                        &mut write_scratch,
                        &mut pump_retry,
                    );
                }
            }
        }
        // Drain the event buffer in place: the `Vec` keeps its capacity
        // across iterations instead of being discarded and regrown from
        // zero every loop (`ReadDone` carries an owned buffer, so this is a
        // move-out drain, not a copy scan).
        for cqe in events.drain(..) {
            let ev_token = cqe.token;
            if ev_token == WAKER_TOKEN {
                waker.drain();
                continue;
            }
            if ev_token.0 >= LISTENER_TOKEN_BASE {
                // A ready shard listener: accept until the burst is drained.
                // This is the whole point of sharded mode — the connection
                // goes from `accept(2)` to this worker's selector without a
                // channel, a lock, or a cross-thread wake.
                let Some(s) = shard.as_mut() else { continue };
                let li = ev_token.0 - LISTENER_TOKEN_BASE;
                if li >= s.listeners.len() || !s.registered {
                    continue; // stale event from a drained/backed-off listener
                }
                loop {
                    match s.listeners[li].accept() {
                        Ok((stream, _)) => {
                            s.backoff = Duration::from_millis(1);
                            let Some(stream) = admit_stream(
                                stream,
                                &cfg,
                                s.fd_limit,
                                &stats,
                                &gauges,
                                &ends,
                                &mut refusal_head,
                                &date,
                            ) else {
                                continue;
                            };
                            if let Some(h) = install_conn(
                                stream,
                                backend.as_mut(),
                                &mut conns,
                                &gauges,
                                deadlines_on,
                                epoch,
                                &mut wheel,
                                &cfg.lifecycle,
                            ) {
                                s.cell.on_accept();
                                if drain_swept {
                                    drain_pending.push(h);
                                }
                                if completion {
                                    let token = Token(h.raw() as usize);
                                    if let Some(conn) = conns.get_mut(h) {
                                        pump_conn(
                                            backend.as_mut(),
                                            conn,
                                            token,
                                            &mut write_scratch,
                                            &mut pump_retry,
                                        );
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) => match e.raw_os_error() {
                            Some(EINTR) | Some(ECONNABORTED) => {
                                stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(EMFILE) | Some(ENFILE) => {
                                // Fd exhaustion: deregister the shard's
                                // listeners and back off exponentially —
                                // the selector keeps serving established
                                // connections (whose teardowns free fds)
                                // instead of spinning on accept.
                                stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                                ends.record(EndCause::FdReserve);
                                for l in &s.listeners {
                                    let _ = backend.deregister(l.as_raw_fd());
                                }
                                s.registered = false;
                                s.resume_at = Some(Instant::now() + s.backoff);
                                s.backoff = (s.backoff * 2).min(Duration::from_millis(100));
                                break;
                            }
                            _ => {
                                stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        },
                    }
                }
                continue;
            }
            // The token *is* the packed slab handle: a generation-checked
            // indexed load resolves the connection, and an event raced
            // against a close (even one whose slot was already reused) is a
            // clean miss, never an aliased lookup. A missed `ReadDone` still
            // owes its backend-owned buffer back to the pool.
            let handle = Handle::from_raw(ev_token.0 as u64);
            let Some(conn) = conns.get_mut(handle) else {
                if let CqeKind::ReadDone { buf, .. } = cqe.kind {
                    backend.recycle(buf);
                }
                continue;
            };
            let flushed_before = conn.bytes_flushed;
            let had_output = conn.wants_write();
            let mut dead = false;
            match cqe.kind {
                CqeKind::Ready {
                    readable,
                    writable,
                    error,
                } => {
                    // An error/hang-up event with nothing readable is fatal
                    // — except on a half-closed connection, where EPOLLRDHUP
                    // is permanently asserted by the peer's FIN and the
                    // connection must stay alive exactly as long as it still
                    // owes output.
                    dead = error && !readable && !(conn.peer_half_closed && writable);
                    if readable && !dead {
                        dead = handle_readable(
                            conn,
                            &cfg,
                            &stats,
                            &ends,
                            &mut read_buf,
                            &date,
                            &mut local_hists,
                            &mut head_pool,
                            &mut req_pool,
                        );
                    }
                    if writable && !dead {
                        // Writability means queued output: this flush burst
                        // is transfer time by definition.
                        let t0 = Instant::now();
                        dead = flush_output(conn, &stats, &mut head_pool);
                        local_hists.record(Stage::Transfer, t0.elapsed().as_nanos() as u64);
                    }
                }
                CqeKind::ReadDone { buf, n, err } => {
                    conn.read_inflight = false;
                    match err {
                        // No progress (spurious completion) or a late cancel
                        // racing a teardown that didn't happen: benign, the
                        // pump below resubmits.
                        Some(reactor::backend::EAGAIN) | Some(reactor::backend::ECANCELED) => {}
                        Some(_) => dead = true,
                        None if n == 0 => {
                            // Clean EOF — the completion-model twin of the
                            // readiness path's `read() == 0` (see
                            // `handle_readable`): serve what was pipelined,
                            // flush what is owed, then close.
                            conn.peer_half_closed = true;
                            conn.close_after_flush = true;
                            dead = !conn.wants_write();
                        }
                        None => {
                            process_input(
                                conn,
                                &cfg,
                                &stats,
                                &ends,
                                &buf[..n],
                                &date,
                                &mut local_hists,
                                &mut head_pool,
                                &mut req_pool,
                            );
                        }
                    }
                    backend.recycle(buf);
                }
                CqeKind::WriteDone { n, err } => {
                    conn.write_inflight = false;
                    match err {
                        // EAGAIN: the submitted copy is consumed but zero
                        // bytes moved; the queue cursor did not advance, so
                        // the pump re-peeks the identical bytes.
                        Some(reactor::backend::EAGAIN) | Some(reactor::backend::ECANCELED) => {}
                        Some(_) => dead = true,
                        None => {
                            // Possibly short: consume exactly what the op
                            // wrote — the cursor slides mid-chunk just like
                            // a short `writev` — and the next pump submits
                            // the remainder.
                            let t0 = Instant::now();
                            conn.out.consume(n, &mut head_pool);
                            stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                            conn.bytes_flushed += n as u64;
                            local_hists.record(Stage::Transfer, t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
            }
            if !dead && !conn.wants_write() && conn.close_after_flush {
                dead = true;
            }
            // Draining: a connection that just went drain-idle closes here
            // in the event path, so the full sweep below stays bounded
            // instead of re-scanning every open connection each pass.
            if !dead && draining && conn.drain_idle() {
                dead = true;
            }
            if !dead && deadlines_on {
                // Readiness on this connection is progress: slide the
                // activity clock, start/clear the header clock (absolute
                // from the first byte of a partial head — a dribble must
                // not refresh it), and tighten the armed deadline. The
                // write-stall clock slides only on actual write progress
                // (or output first becoming pending) — read activity from
                // a never-draining peer must not reset it.
                conn.last_activity_ns = now_ns;
                if conn.bytes_flushed != flushed_before
                    || (!had_output && conn.wants_write())
                {
                    conn.last_write_progress_ns = now_ns;
                }
                if conn.parser.buffered() > 0 {
                    if conn.head_start_ns == 0 {
                        conn.head_start_ns = now_ns;
                    }
                } else {
                    conn.head_start_ns = 0;
                }
                rearm_deadline(&mut wheel, conn, ev_token.0, &cfg.lifecycle);
            }
            if dead {
                if draining {
                    if conn.wants_write() {
                        ctl.aborted.fetch_add(1, Ordering::SeqCst);
                    } else {
                        ctl.drained.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let fd = conn.stream.as_raw_fd();
                let _ = backend.deregister(fd);
                conns.remove(handle);
                gauges.sub(GaugeKind::OpenConns, 1);
                gauges.sub(GaugeKind::RegisteredConns, 1);
                if let Some(s) = shard.as_ref() {
                    s.cell.on_close();
                }
            } else if completion {
                // Completion model: interest is implied by in-flight ops —
                // keep a read armed (unless the peer half-closed) and a
                // write armed while output is owed. A live connection
                // always has at least one op in flight, so it can never
                // silently fall out of the event stream.
                pump_conn(
                    backend.as_mut(),
                    conn,
                    ev_token,
                    &mut write_scratch,
                    &mut pump_retry,
                );
            } else {
                // Only an actual interest change costs a syscall; the
                // steady read-only request/reply cadence pays none.
                let want = conn.interest();
                if want != conn.registered {
                    let fd = conn.stream.as_raw_fd();
                    if backend.set_interest(fd, ev_token, want).is_ok() {
                        conn.registered = want;
                    }
                }
            }
        }

        // Deadline harvest: pop every expired wheel entry and re-check it
        // against the connection's *current* deadline — entries are lazy, so
        // a pop is a hypothesis, not a verdict. A still-live connection
        // re-arms; a genuinely expired one is torn down by cause.
        if deadlines_on {
            while let Some((_, token)) = wheel.pop_due(now_ns) {
                let handle = Handle::from_raw(token as u64);
                let expired = match conns.get_mut(handle) {
                    // Handle stale: the connection closed normally after
                    // this entry was armed (the generation tag also rules
                    // out a reused slot). Skip.
                    None => None,
                    Some(conn) => {
                        conn.armed_until = u64::MAX;
                        match conn.next_due(&cfg.lifecycle) {
                            None => None,
                            Some((due, _)) if due > now_ns => {
                                wheel.schedule(due, token);
                                conn.armed_until = due;
                                None
                            }
                            Some((_, cause)) => Some(cause),
                        }
                    }
                };
                let Some(cause) = expired else {
                    continue;
                };
                let mut conn = conns.remove(handle).expect("present above");
                ends.record(cause);
                match cause {
                    EndCause::HeaderTimeout => {
                        // Answer the half-sent request before closing: the
                        // head is tiny, one non-blocking shot delivers it
                        // unless the attacker also jammed the send buffer.
                        respond_status(&mut conn, Status::RequestTimeout, &date, &mut head_pool);
                        let _ = flush_output(&mut conn, &stats, &mut head_pool);
                    }
                    _ => {
                        // Idle / write-stall: abortive close — httpd2's
                        // observable behaviour, the Fig-3 reset stream.
                        let _ = set_linger_zero(&conn.stream);
                    }
                }
                if draining {
                    if conn.wants_write() {
                        ctl.aborted.fetch_add(1, Ordering::SeqCst);
                    } else {
                        ctl.drained.fetch_add(1, Ordering::SeqCst);
                    }
                }
                let _ = backend.deregister(conn.stream.as_raw_fd());
                gauges.sub(GaugeKind::OpenConns, 1);
                gauges.sub(GaugeKind::RegisteredConns, 1);
                if let Some(s) = shard.as_ref() {
                    s.cell.on_close();
                }
            }
        }

        if draining {
            // Drain sweep: idle connections close now; in-flight ones keep
            // flushing until done or until the deadline cuts them. The
            // deadline is fixed at drain start, so it is read (under the
            // mutex) once and cached; each pass costs one `Instant::now()`
            // and no allocation.
            if drain_deadline.is_none() {
                drain_deadline = *ctl.drain_deadline.lock();
            }
            let now = Instant::now();
            let deadline_hit = drain_deadline.is_some_and(|d| now >= d);
            // The O(open) sweep runs exactly once, when the drain begins:
            // it closes the already-idle population and collects the
            // in-flight survivors into `drain_pending`. From then on,
            // connections that *become* idle close in the event path above,
            // and the deadline cut below walks only the pending list — a
            // worker parked on a million idle connections never re-scans
            // them.
            if !drain_swept {
                drain_swept = true;
                stats.drain_full_sweeps.fetch_add(1, Ordering::Relaxed);
                conns.retain(|h, conn| {
                    if !(conn.drain_idle() || deadline_hit) {
                        drain_pending.push(h);
                        return true;
                    }
                    if conn.wants_write() {
                        ctl.aborted.fetch_add(1, Ordering::SeqCst);
                    } else {
                        ctl.drained.fetch_add(1, Ordering::SeqCst);
                    }
                    let _ = backend.deregister(conn.stream.as_raw_fd());
                    gauges.sub(GaugeKind::OpenConns, 1);
                    gauges.sub(GaugeKind::RegisteredConns, 1);
                    if let Some(s) = &shard {
                        s.cell.on_close();
                    }
                    false
                });
            } else if deadline_hit {
                // Deadline cut: O(pending at drain start). Handles whose
                // connections already finished (closed in the event path)
                // are stale by generation and skip for free.
                for h in drain_pending.drain(..) {
                    let Some(conn) = conns.remove(h) else {
                        continue;
                    };
                    if conn.wants_write() {
                        ctl.aborted.fetch_add(1, Ordering::SeqCst);
                    } else {
                        ctl.drained.fetch_add(1, Ordering::SeqCst);
                    }
                    let _ = backend.deregister(conn.stream.as_raw_fd());
                    gauges.sub(GaugeKind::OpenConns, 1);
                    gauges.sub(GaugeKind::RegisteredConns, 1);
                    if let Some(s) = &shard {
                        s.cell.on_close();
                    }
                }
            }
            if conns.is_empty() {
                break;
            }
        }
    }
    stats.alive_workers.fetch_sub(1, Ordering::SeqCst);
    hists.lock().merge(&local_hists);
}

/// Feed freshly arrived request bytes through the parser and serve every
/// complete request — the backend-agnostic middle of the read path, shared
/// by the readiness loop (which read the bytes itself) and the completion
/// loop (which got them from a `ReadDone` buffer). Flushing is the caller's
/// job: readiness flushes opportunistically, completion submits a write op.
#[allow(clippy::too_many_arguments)]
fn process_input(
    conn: &mut Conn,
    cfg: &NioConfig,
    stats: &NioStats,
    ends: &LiveEnds,
    data: &[u8],
    date: &str,
    hists: &mut StageHists,
    head_pool: &mut HeadPool,
    req_pool: &mut RequestPool,
) {
    // Stage clocks: feed+parse is the parse burst (restarted after each
    // served request so pipelined requests each get their own sample), the
    // response build is service.
    let mut p0 = Instant::now();
    conn.parser.feed(data);
    loop {
        match conn.parser.parse_pooled(req_pool) {
            ParseOutcome::Complete(req) => {
                hists.record(Stage::Parse, p0.elapsed().as_nanos() as u64);
                let s0 = Instant::now();
                serve(conn, cfg, stats, &req, date, head_pool);
                // Return the request's allocations to the worker's pool for
                // the next parse on *any* connection — idle connections
                // hold no scratch.
                req_pool.give(req);
                hists.record(Stage::Service, s0.elapsed().as_nanos() as u64);
                p0 = Instant::now();
            }
            ParseOutcome::Incomplete => break,
            ParseOutcome::Error(e) => {
                stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                // A tripped parser *limit* is a resource defense, not a
                // syntax error: say so with 431 and count it in the
                // lifecycle tally.
                let status = match e {
                    ParseError::LineTooLong | ParseError::TooManyHeaders => {
                        ends.record(EndCause::ParseLimit);
                        Status::RequestHeaderFieldsTooLarge
                    }
                    _ => Status::BadRequest,
                };
                respond_status(conn, status, date, head_pool);
                conn.close_after_flush = true;
                break;
            }
        }
    }
}

/// How much staged output one completion write op carries. Big enough that
/// a whole typical reply ships in one op, small enough to bound the
/// per-submission copy (`submit_write` copies at submit time — the price of
/// completion semantics over a caller-owned queue; registered buffers would
/// remove it and are future work, see DESIGN.md §16).
const WRITE_CHUNK: usize = 32 * 1024;

/// Completion-model op upkeep for a live connection: keep exactly one read
/// in flight (unless the peer half-closed — the submit/reap twin of
/// dropping read interest) and one write while output is owed. A refused
/// submission (`SqFull`) parks the token in `retry`; the caller re-pumps
/// after the next `wait` drains the queue. Invariant: a live connection
/// always leaves with ≥1 op in flight or its token parked, so it can never
/// fall out of the event stream.
fn pump_conn(
    backend: &mut dyn Backend,
    conn: &mut Conn,
    token: Token,
    scratch: &mut Vec<u8>,
    retry: &mut Vec<Token>,
) {
    let fd = conn.stream.as_raw_fd();
    let mut parked = false;
    if !conn.write_inflight && conn.wants_write() {
        scratch.clear();
        conn.out.peek(scratch, WRITE_CHUNK);
        match backend.submit_write(fd, token, scratch) {
            Ok(()) => conn.write_inflight = true,
            Err(SubmitError::SqFull) => parked = true,
        }
    }
    if !conn.read_inflight && !conn.peer_half_closed {
        match backend.submit_read(fd, token) {
            Ok(()) => conn.read_inflight = true,
            Err(SubmitError::SqFull) => parked = true,
        }
    }
    if parked {
        retry.push(token);
    }
}

/// Drain the socket and serve every complete request — the readiness-model
/// read path (the worker owns the syscalls). Returns true when the
/// connection must be torn down.
#[allow(clippy::too_many_arguments)]
fn handle_readable(
    conn: &mut Conn,
    cfg: &NioConfig,
    stats: &NioStats,
    ends: &LiveEnds,
    scratch: &mut [u8],
    date: &str,
    hists: &mut StageHists,
    head_pool: &mut HeadPool,
    req_pool: &mut RequestPool,
) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // FIN: the peer half-closed (`shutdown(SHUT_WR)`) or went
                // away entirely. Every complete pipelined request it sent
                // has already been parsed and served by the loop below (the
                // kernel delivers data before the EOF), so the connection's
                // remaining job is to flush what it owes and close cleanly.
                // A dangling partial head dies unanswered — it can never
                // complete, so a 408 would be noise.
                conn.peer_half_closed = true;
                conn.close_after_flush = true;
                return !conn.wants_write();
            }
            Ok(n) => {
                process_input(
                    conn, cfg, stats, ends, &scratch[..n], date, hists, head_pool, req_pool,
                );
                // Opportunistic write of what we just queued (timed as
                // transfer only when there is output to move).
                let had_output = conn.wants_write();
                let t0 = Instant::now();
                let flush_dead = flush_output(conn, stats, head_pool);
                if had_output {
                    hists.record(Stage::Transfer, t0.elapsed().as_nanos() as u64);
                }
                if flush_dead {
                    return true;
                }
                // A short read means the socket buffer was drained at
                // syscall time — skip the read that would only confirm
                // `WouldBlock`. The selector is level-triggered: bytes that
                // arrive later re-report the fd, so nothing is lost.
                if n < scratch.len() {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

fn serve(
    conn: &mut Conn,
    cfg: &NioConfig,
    stats: &NioStats,
    req: &httpcore::Request,
    date: &str,
    pool: &mut HeadPool,
) {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let keep = req.keep_alive();
    // Heads render into a buffer recycled through the worker's pool; bodies
    // stage as arena handles — a steady-state connection serves every reply
    // copy- and allocation-free, and an idle connection holds no spares.
    let mut head = pool.take();
    match (req.method, cfg.content.resolve(&req.target)) {
        (Method::Get, Some(id)) => {
            let lm = cfg.content.last_modified(id);
            if req.header("if-modified-since") == Some(lm) {
                httpcore::write_head_full(
                    &mut head,
                    req.version,
                    Status::NotModified,
                    0,
                    keep,
                    date,
                    Some(lm),
                );
                conn.out.push_head(head, pool);
            } else {
                let body = cfg.content.body_slice(id);
                httpcore::write_head_full(
                    &mut head,
                    req.version,
                    Status::Ok,
                    body.len(),
                    keep,
                    date,
                    Some(lm),
                );
                conn.out.push_head(head, pool);
                conn.out.push_body(body);
            }
        }
        (Method::Head, Some(id)) => {
            let lm = cfg.content.last_modified(id);
            let len = cfg.content.size_of(id) as usize;
            httpcore::write_head_full(&mut head, req.version, Status::Ok, len, keep, date, Some(lm));
            conn.out.push_head(head, pool);
        }
        (Method::Other, _) => {
            httpcore::write_head(
                &mut head,
                req.version,
                Status::NotImplemented,
                0,
                keep,
                date,
            );
            conn.out.push_head(head, pool);
        }
        (_, None) => {
            httpcore::write_head(&mut head, req.version, Status::NotFound, 0, keep, date);
            conn.out.push_head(head, pool);
        }
    }
    if !keep {
        conn.close_after_flush = true;
    }
}

fn respond_status(conn: &mut Conn, status: Status, date: &str, pool: &mut HeadPool) {
    let mut head = pool.take();
    httpcore::write_head(&mut head, Version::Http11, status, 0, false, date);
    conn.out.push_head(head, pool);
}

/// Non-blocking vectored flush of the staged output. Returns true when the
/// connection must be torn down (write error).
fn flush_output(conn: &mut Conn, stats: &NioStats, pool: &mut HeadPool) -> bool {
    while !conn.out.is_empty() {
        match conn.out.write_to(&mut conn.stream, pool) {
            Ok(0) => return true,
            Ok(n) => {
                stats.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                conn.bytes_flushed += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    false
}

/// `setsockopt(SOL_SOCKET, opt, bytes)` — shared plumbing for the buffer
/// sizing knobs (the kernel doubles the value for bookkeeping and clamps
/// to `net.core.{w,r}mem_max`).
fn set_sockbuf(stream: &TcpStream, opt: i32, bytes: i32) -> io::Result<()> {
    extern "C" {
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    let r = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            opt,
            &bytes as *const i32 as *const _,
            std::mem::size_of::<i32>() as u32,
        )
    };
    if r < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// SO_SNDBUF: size the kernel send buffer.
fn set_sndbuf(stream: &TcpStream, bytes: i32) -> io::Result<()> {
    set_sockbuf(stream, 7, bytes)
}

/// SO_RCVBUF: size the kernel receive buffer.
fn set_rcvbuf(stream: &TcpStream, bytes: i32) -> io::Result<()> {
    set_sockbuf(stream, 8, bytes)
}

/// SO_LINGER(0): make `close()` send RST instead of FIN, so a shed client
/// observes ECONNRESET before any reply — an explicit refusal.
fn set_linger_zero(stream: &TcpStream) -> io::Result<()> {
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let r = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            &linger as *const Linger as *const _,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    if r < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;
    use faults::FaultTarget;
    use std::io::Write;
    use workload::{FileSet, SurgeConfig};

    fn test_content() -> Arc<ContentStore> {
        let mut rng = Rng::new(1);
        let fs = FileSet::build(
            &SurgeConfig {
                num_files: 20,
                tail_prob: 0.0,
                ..SurgeConfig::default()
            },
            &mut rng,
        );
        Arc::new(ContentStore::from_fileset(&fs))
    }

    fn start(workers: usize, backend: BackendKind) -> NioServer {
        start_mode(workers, backend, AcceptMode::Handoff)
    }

    fn start_mode(workers: usize, backend: BackendKind, accept: AcceptMode) -> NioServer {
        NioServer::start(NioConfig {
            workers,
            backend,
            accept,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: test_content(),
        })
        .unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        (head.status, buf[head.head_len..].to_vec())
    }

    #[test]
    fn serves_files_end_to_end() {
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let (status, body) = get(server.addr(), "/f/3");
        assert_eq!(status, 200);
        assert_eq!(body, content.body(workload::FileId(3)));
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404() {
        let server = start(1, BackendKind::Poll);
        let (status, body) = get(server.addr(), "/nope");
        assert_eq!(status, 404);
        assert!(body.is_empty());
        server.shutdown();
    }

    #[test]
    fn persistent_connection_pipelining() {
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 2,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Three pipelined requests on one connection.
        write!(
            s,
            "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\nGET /f/1 HTTP/1.1\r\nHost: t\r\n\r\nGET /f/2 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let mut off = 0;
        for id in 0..3u32 {
            let head = httpcore::parse_response_head(&buf[off..])
                .expect("complete head")
                .expect("valid head");
            assert_eq!(head.status, 200);
            let body = &buf[off + head.head_len..off + head.head_len + head.content_length];
            assert_eq!(body, content.body(workload::FileId(id)), "reply {id}");
            off += head.head_len + head.content_length;
        }
        assert_eq!(off, buf.len(), "no trailing bytes");
        server.shutdown();
    }

    #[test]
    fn half_close_drains_buffered_pipeline_then_closes_cleanly() {
        // `shutdown(SHUT_WR)` after a pipelined burst: every request that
        // was already on the wire must still be served, the replies
        // flushed, and the close must be a clean FIN (read_to_end returns
        // Ok), never an abortive reset.
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Keep-alive requests — without the half-close the server would
        // hold the connection open waiting for more.
        s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\nGET /f/1 HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("clean close, not a reset");
        let mut off = 0;
        for id in 0..2u32 {
            let head = httpcore::parse_response_head(&buf[off..])
                .expect("complete head")
                .expect("valid head");
            assert_eq!(head.status, 200, "reply {id}");
            let body = &buf[off + head.head_len..off + head.head_len + head.content_length];
            assert_eq!(body, content.body(workload::FileId(id)), "reply {id}");
            off += head.head_len + head.content_length;
        }
        assert_eq!(off, buf.len(), "no trailing bytes after the two replies");
        server.shutdown();
    }

    #[test]
    fn half_close_with_partial_head_closes_without_answer() {
        // FIN while a head is dangling: it can never complete, so the
        // server closes cleanly without inventing a 408.
        let server = start(1, BackendKind::Epoll);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("clean close");
        assert!(buf.is_empty(), "no reply owed to an unfinished head");
        server.shutdown();
    }

    #[test]
    fn trimmed_socket_buffers_still_serve_full_bodies() {
        // The SO_RCVBUF/SO_SNDBUF policy knobs shrink kernel-side memory;
        // replies bigger than the trimmed send buffer must still arrive
        // whole (the flush path parks in the WRITABLE set and resumes).
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default().with_buffers(4096, 4096),
            content: Arc::clone(&content),
        })
        .unwrap();
        let (status, body) = get(server.addr(), "/f/3");
        assert_eq!(status, 200);
        assert_eq!(body, content.body(workload::FileId(3)));
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = start(1, BackendKind::Epoll);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 400);
        assert_eq!(server.stats().parse_errors.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn conditional_get_returns_304() {
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let lm = content.last_modified(workload::FileId(2));
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET /f/2 HTTP/1.1\r\nHost: t\r\nIf-Modified-Since: {lm}\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 304);
        assert_eq!(head.content_length, 0);
        assert_eq!(buf.len(), head.head_len, "no body after 304");
        server.shutdown();
    }

    #[test]
    fn stale_if_modified_since_returns_full_body() {
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET /f/2 HTTP/1.1\r\nHost: t\r\nIf-Modified-Since: Thu, 01 Jan 1970 00:00:00 GMT\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(
            head.content_length as u64,
            content.size_of(workload::FileId(2))
        );
        server.shutdown();
    }

    #[test]
    fn many_concurrent_connections_on_one_worker() {
        // The paper's architectural claim in miniature: one worker thread
        // multiplexes many simultaneously connected clients.
        let server = start(1, BackendKind::Epoll);
        let addr = server.addr();
        let handles: Vec<_> = (0..32)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                    write!(
                        s,
                        "GET /f/{} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                        i % 20
                    )
                    .unwrap();
                    let mut buf = Vec::new();
                    s.read_to_end(&mut buf).unwrap();
                    let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
                    assert_eq!(head.status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().requests.load(Ordering::Relaxed), 32);
        server.shutdown();
    }

    #[test]
    fn acceptor_survives_worker_crash_and_restart() {
        let server = start(2, BackendKind::Epoll);
        let up = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 2
        });
        assert!(up, "workers never came up");
        assert!(server.crash_worker());
        let died = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 1
        });
        assert!(died, "no worker consumed the crash token");
        // The acceptor re-routes around the dead worker's channel: every
        // request still gets served.
        for i in 0..8 {
            let (status, _) = get(server.addr(), &format!("/f/{}", i % 20));
            assert_eq!(status, 200, "request {i} after crash");
        }
        assert!(server.restart_worker());
        let back = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 2
        });
        assert!(back, "restarted worker never came up");
        let (status, _) = get(server.addr(), "/f/1");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn stall_accepts_blocks_then_recovers() {
        let server = start(1, BackendKind::Epoll);
        server.stall_accepts(true);
        let addr = server.addr();
        let t = std::thread::spawn(move || get(addr, "/f/0"));
        std::thread::sleep(Duration::from_millis(300));
        assert!(!t.is_finished(), "request served during an accept stall");
        server.stall_accepts(false);
        let (status, _) = t.join().unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn graceful_drain_closes_idle_and_reports() {
        let server = start(1, BackendKind::Epoll);
        // An idle keep-alive connection: one request, then silence.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut tmp = [0u8; 65536];
        let n = s.read(&mut tmp).unwrap();
        assert!(n > 0);
        let t0 = Instant::now();
        let report = server.shutdown_graceful(Duration::from_secs(2));
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "idle drain should not wait for the deadline: {:?}",
            t0.elapsed()
        );
        assert_eq!(report.drained, 1, "{report:?}");
        assert_eq!(report.aborted, 0, "{report:?}");
        // The connection is now closed at our end.
        let closed = matches!(s.read(&mut tmp), Ok(0) | Err(_));
        assert!(closed, "drained connection still open");
    }

    fn start_with_lifecycle(lifecycle: LifecyclePolicy) -> NioServer {
        NioServer::start(NioConfig {
            workers: 1,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle,
            content: test_content(),
        })
        .unwrap()
    }

    #[test]
    fn oversize_request_line_gets_431_not_400() {
        let server = start(1, BackendKind::Epoll);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Request line longer than the default 8192-byte per-line limit.
        let long = format!("GET /{} HTTP/1.1\r\nHost: t\r\n\r\n", "a".repeat(9000));
        s.write_all(long.as_bytes()).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 431, "parser limit must answer 431");
        assert!(!head.keep_alive, "431 closes the connection");
        assert_eq!(
            server.ends().get(obs::EndCause::ParseLimit),
            1,
            "parse-limit close must be tallied"
        );
        server.shutdown();
    }

    #[test]
    fn idle_timeout_resets_like_httpd2() {
        // The Fig-3 knob: the same binary that never resets by default
        // produces httpd2's reset stream once the idle timeout is armed.
        let server = start_with_lifecycle(LifecyclePolicy {
            idle_timeout: Some(Duration::from_millis(300)),
            ..LifecyclePolicy::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut tmp = [0u8; 65536];
        let n = s.read(&mut tmp).unwrap();
        assert!(n > 0, "first request must be served");
        // Think silently past the timeout; the server reclaims the
        // connection abortively.
        std::thread::sleep(Duration::from_millis(900));
        let dead = matches!(s.read(&mut tmp), Ok(0) | Err(_));
        assert!(dead, "idle connection must be reclaimed");
        assert_eq!(server.ends().get(obs::EndCause::IdleTimeout), 1);
        server.shutdown();
    }

    #[test]
    fn slow_header_gets_408() {
        let server = start_with_lifecycle(LifecyclePolicy {
            header_timeout: Some(Duration::from_millis(300)),
            ..LifecyclePolicy::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // A slow-loris opening: start a request head, then stall forever.
        s.write_all(b"GET /f/0 HT").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 408, "stalled header must be answered");
        assert_eq!(server.ends().get(obs::EndCause::HeaderTimeout), 1);
        server.shutdown();
    }

    #[test]
    fn header_dribble_does_not_slide_the_deadline() {
        // Anti-slow-loris: the header deadline is absolute from the first
        // byte, so dribbling one byte per 100 ms cannot hold it open.
        let server = start_with_lifecycle(LifecyclePolicy {
            header_timeout: Some(Duration::from_millis(400)),
            ..LifecyclePolicy::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let t0 = Instant::now();
        let mut buf = Vec::new();
        for b in b"GET /f/0 HTTP/1.1\r\nHost:" {
            if s.write_all(&[*b]).is_err() {
                break; // server already cut us off mid-dribble
            }
            std::thread::sleep(Duration::from_millis(100));
            if t0.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let _ = s.read_to_end(&mut buf);
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "dribbled head must not survive past the absolute deadline"
        );
        assert_eq!(server.ends().get(obs::EndCause::HeaderTimeout), 1);
        server.shutdown();
    }

    #[test]
    fn connection_cap_answers_503_and_close() {
        let server = start_with_lifecycle(LifecyclePolicy {
            max_conns: Some(0),
            ..LifecyclePolicy::default()
        });
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 503, "over-cap admission must answer 503");
        assert!(!head.keep_alive, "refusal must close");
        assert_eq!(server.ends().get(obs::EndCause::Refused), 1);
        assert_eq!(server.stats().refused.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    #[test]
    fn sharded_serves_files_end_to_end() {
        let server = start_mode(2, BackendKind::Epoll, AcceptMode::Sharded);
        for i in 0..8 {
            let (status, _) = get(server.addr(), &format!("/f/{}", i % 20));
            assert_eq!(status, 200, "request {i}");
        }
        assert_eq!(server.stats().accepted.load(Ordering::Relaxed), 8);
        assert_eq!(
            server.shard_gauges().total_accepted(),
            8,
            "per-shard gauges must conserve the accepted total"
        );
        server.shutdown();
    }

    #[test]
    fn sharded_pipelining_works() {
        let content = test_content();
        let server = NioServer::start(NioConfig {
            workers: 2,
            backend: BackendKind::Epoll,
            accept: AcceptMode::Sharded,
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(
            s,
            "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\nGET /f/1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let mut off = 0;
        for id in 0..2u32 {
            let head = httpcore::parse_response_head(&buf[off..]).unwrap().unwrap();
            assert_eq!(head.status, 200);
            let body = &buf[off + head.head_len..off + head.head_len + head.content_length];
            assert_eq!(body, content.body(workload::FileId(id)), "reply {id}");
            off += head.head_len + head.content_length;
        }
        server.shutdown();
    }

    #[test]
    fn sharded_crash_hands_listener_to_survivor() {
        // The takeover protocol: crashing a shard must not lose its share
        // of the listen port — a survivor adopts the orphaned listener fd,
        // so every subsequent connection is still served no matter which
        // reuseport bucket the kernel hashes it into.
        let server = start_mode(2, BackendKind::Epoll, AcceptMode::Sharded);
        let up = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 2
        });
        assert!(up, "workers never came up");
        assert!(server.crash_worker());
        let died = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 1
        });
        assert!(died, "no worker consumed the crash token");
        // Give the survivor a moment to adopt the orphaned listener, then
        // hammer the port: with takeover every request is served; without
        // it roughly half would hash into a dead queue and hang.
        std::thread::sleep(Duration::from_millis(100));
        for i in 0..16 {
            let (status, _) = get(server.addr(), &format!("/f/{}", i % 20));
            assert_eq!(status, 200, "request {i} after shard crash");
        }
        assert!(server.restart_worker());
        let back = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            server.stats().alive_workers.load(Ordering::SeqCst) == 2
        });
        assert!(back, "restarted worker never came up");
        for i in 0..8 {
            let (status, _) = get(server.addr(), &format!("/f/{}", i % 20));
            assert_eq!(status, 200, "request {i} after restart");
        }
        server.shutdown();
    }

    #[test]
    fn sharded_stall_blocks_then_recovers() {
        let server = start_mode(2, BackendKind::Epoll, AcceptMode::Sharded);
        server.stall_accepts(true);
        std::thread::sleep(Duration::from_millis(50)); // let shards deregister
        let addr = server.addr();
        let t = std::thread::spawn(move || get(addr, "/f/0"));
        std::thread::sleep(Duration::from_millis(300));
        assert!(!t.is_finished(), "request served during an accept stall");
        server.stall_accepts(false);
        let (status, _) = t.join().unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn sharded_graceful_drain_reports() {
        let server = start_mode(1, BackendKind::Epoll, AcceptMode::Sharded);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut tmp = [0u8; 65536];
        assert!(s.read(&mut tmp).unwrap() > 0);
        let report = server.shutdown_graceful(Duration::from_secs(2));
        assert_eq!(report.drained, 1, "{report:?}");
        assert_eq!(report.aborted, 0, "{report:?}");
    }

    #[test]
    fn shard_balance_1k_storm() {
        // Fixed-workload shard-balance regression: 1024 connections against
        // two shards. The kernel's reuseport hash over distinct source
        // ports spreads them ~binomially, so the max/min accepted ratio
        // stays far below 2.0 (mean 512/shard, σ=16 — a 1.5 bound is >9σ);
        // a broken sharded path (one dead or unregistered listener) shows
        // up as an unbounded ratio or hung connections instead.
        let server = start_mode(2, BackendKind::Epoll, AcceptMode::Sharded);
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..128 {
                        let mut s = TcpStream::connect(addr).unwrap();
                        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                        write!(
                            s,
                            "GET /f/{} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
                            (t * 128 + i) % 20
                        )
                        .unwrap();
                        let mut buf = Vec::new();
                        s.read_to_end(&mut buf).unwrap();
                        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
                        assert_eq!(head.status, 200);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let shards = server.shard_gauges();
        let accepted = server.stats().accepted.load(Ordering::Relaxed);
        assert_eq!(accepted, 1024);
        assert_eq!(
            shards.total_accepted(),
            accepted,
            "per-shard accepts must sum to the server total: {:?}",
            shards.snapshot()
        );
        let snapshot = shards.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert!(
            snapshot.iter().all(|s| s.accepted > 0),
            "every shard must take traffic: {snapshot:?}"
        );
        let ratio = shards.balance_ratio();
        assert!(
            ratio <= 1.5,
            "shard imbalance {ratio:.2} exceeds bound: {snapshot:?}"
        );
        // All storm connections closed by now: occupancy must be fully
        // repaid (the storm uses Connection: close and drains each reply).
        let open_ok = (0..100).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            shards.snapshot().iter().all(|s| s.open == 0)
        });
        assert!(open_ok, "shard occupancy never drained: {:?}", shards.snapshot());
        server.shutdown();
    }

    #[test]
    fn default_lifecycle_never_times_out_thinking_clients() {
        // Paper shape preserved: with the default policy a silent keep-alive
        // connection survives arbitrarily long thinking pauses.
        let server = start(1, BackendKind::Epoll);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut tmp = [0u8; 65536];
        assert!(s.read(&mut tmp).unwrap() > 0);
        std::thread::sleep(Duration::from_millis(700));
        // Still alive: a second request on the same connection succeeds.
        write!(s, "GET /f/1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(server.ends().total(), 0, "no lifecycle teardowns");
        server.shutdown();
    }

    // ---- cross-backend matrix -------------------------------------------
    //
    // The same observable behaviour on every engine: readiness (epoll),
    // deterministic mock completion (with fault injection), and — when the
    // kernel cooperates — real io_uring. Each test below loops the full
    // matrix so a semantic drift between the readiness and completion legs
    // of the event loop fails by name.

    fn matrix_backends() -> Vec<BackendKind> {
        let mut v = vec![BackendKind::Epoll, BackendKind::MockCompletion];
        if reactor::io_uring_available() {
            v.push(BackendKind::IoUring);
        }
        v
    }

    #[test]
    fn every_backend_serves_files_end_to_end() {
        let content = test_content();
        for backend in matrix_backends() {
            for accept in [AcceptMode::Handoff, AcceptMode::Sharded] {
                let server = NioServer::start(NioConfig {
                    workers: 2,
                    backend,
                    accept,
                    shed_watermark: None,
                    lifecycle: LifecyclePolicy::default(),
                    content: Arc::clone(&content),
                })
                .unwrap();
                let (status, body) = get(server.addr(), "/f/3");
                assert_eq!(status, 200, "{backend:?}/{accept:?}");
                assert_eq!(
                    body,
                    content.body(workload::FileId(3)),
                    "{backend:?}/{accept:?}"
                );
                let (status, _) = get(server.addr(), "/nope");
                assert_eq!(status, 404, "{backend:?}/{accept:?}");
                server.shutdown();
            }
        }
    }

    #[test]
    fn every_backend_pipelines_and_half_closes() {
        // Pipelined keep-alive burst followed by SHUT_WR: the completion
        // path must treat a 0-byte ReadDone exactly like the readiness
        // path's read()==0 — drain the owed replies, then FIN cleanly.
        let content = test_content();
        for backend in matrix_backends() {
            let server = start(1, backend);
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(
                b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\nGET /f/1 HTTP/1.1\r\nHost: t\r\n\r\n",
            )
            .unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).expect("clean close, not a reset");
            let mut off = 0;
            for id in 0..2u32 {
                let head = httpcore::parse_response_head(&buf[off..])
                    .expect("complete head")
                    .expect("valid head");
                assert_eq!(head.status, 200, "{backend:?} reply {id}");
                let body = &buf[off + head.head_len..off + head.head_len + head.content_length];
                assert_eq!(body, content.body(workload::FileId(id)), "{backend:?} reply {id}");
                off += head.head_len + head.content_length;
            }
            assert_eq!(off, buf.len(), "{backend:?}: trailing bytes");
            server.shutdown();
        }
    }

    /// Read exactly one complete response (head + body) from a keep-alive
    /// connection, in as many reads as the fragmentation demands.
    fn read_one_reply(s: &mut TcpStream, ctx: &str) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut tmp = [0u8; 65536];
        loop {
            if let Some(head) = httpcore::parse_response_head(&buf) {
                let head = head.expect("valid head");
                if buf.len() >= head.head_len + head.content_length {
                    return buf;
                }
            }
            let n = s
                .read(&mut tmp)
                .unwrap_or_else(|e| panic!("{ctx}: read mid-reply: {e}"));
            assert!(n > 0, "{ctx}: EOF before a complete reply");
            buf.extend_from_slice(&tmp[..n]);
        }
    }

    fn start_backend_policy(
        backend: BackendKind,
        lifecycle: LifecyclePolicy,
        content: Arc<ContentStore>,
    ) -> NioServer {
        NioServer::start(NioConfig {
            workers: 1,
            backend,
            accept: AcceptMode::Handoff,
            shed_watermark: None,
            lifecycle,
            content,
        })
        .unwrap()
    }

    #[test]
    fn every_backend_enforces_idle_timeout() {
        for backend in matrix_backends() {
            let server = start_backend_policy(
                backend,
                LifecyclePolicy {
                    idle_timeout: Some(Duration::from_millis(300)),
                    ..LifecyclePolicy::default()
                },
                test_content(),
            );
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            write!(s, "GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            // Drain the whole reply before going silent: under scripted
            // short writes it arrives fragmented, and leftover bytes would
            // make the post-sleep read look like a live connection.
            read_one_reply(&mut s, &format!("{backend:?}"));
            std::thread::sleep(Duration::from_millis(900));
            let mut tmp = [0u8; 65536];
            let dead = matches!(s.read(&mut tmp), Ok(0) | Err(_));
            assert!(dead, "{backend:?}: idle connection must be reclaimed");
            assert_eq!(server.ends().get(obs::EndCause::IdleTimeout), 1, "{backend:?}");
            server.shutdown();
        }
    }

    #[test]
    fn every_backend_answers_408_on_slow_header() {
        // Under completion semantics a read op is in flight when the header
        // deadline fires; the teardown must cancel it and still deliver the
        // 408 head through the direct flush path.
        for backend in matrix_backends() {
            let server = start_backend_policy(
                backend,
                LifecyclePolicy {
                    header_timeout: Some(Duration::from_millis(300)),
                    ..LifecyclePolicy::default()
                },
                test_content(),
            );
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(b"GET /f/0 HT").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            let head = httpcore::parse_response_head(&buf).unwrap().unwrap();
            assert_eq!(head.status, 408, "{backend:?}");
            assert_eq!(
                server.ends().get(obs::EndCause::HeaderTimeout),
                1,
                "{backend:?}"
            );
            server.shutdown();
        }
    }

    /// One file of exactly `min_bytes` — large enough that a trimmed send
    /// buffer cannot swallow the whole reply, so the flush genuinely parks.
    fn big_content(min_bytes: u64) -> Arc<ContentStore> {
        let mut rng = Rng::new(9);
        let fs = FileSet::build(
            &SurgeConfig {
                num_files: 1,
                tail_prob: 0.0,
                min_bytes,
                ..SurgeConfig::default()
            },
            &mut rng,
        );
        Arc::new(ContentStore::from_fileset(&fs))
    }

    #[test]
    fn every_backend_reclaims_stalled_writers() {
        // A client that requests a megabyte and never reads: once the
        // kernel windows fill, no WriteDone (or writable event) arrives,
        // the stall clock stops sliding, and the wheel reclaims the
        // connection abortively.
        let content = big_content(1 << 20);
        for backend in matrix_backends() {
            let server = start_backend_policy(
                backend,
                LifecyclePolicy {
                    write_stall_timeout: Some(Duration::from_millis(400)),
                    ..LifecyclePolicy::default()
                }
                .with_buffers(16 * 1024, 16 * 1024),
                Arc::clone(&content),
            );
            let mut s = TcpStream::connect(server.addr()).unwrap();
            set_rcvbuf(&s, 8 * 1024).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .unwrap();
            // Never read. The abort must land well before the client's own
            // read timeout; read_to_end then fails (RST) or comes up short.
            let stalled = (0..100).any(|_| {
                std::thread::sleep(Duration::from_millis(50));
                server.ends().get(obs::EndCause::WriteStall) == 1
            });
            assert!(stalled, "{backend:?}: stalled writer never reclaimed");
            let mut buf = Vec::new();
            let short = match s.read_to_end(&mut buf) {
                Err(_) => true,
                Ok(_) => buf.len() < (1 << 20),
            };
            assert!(short, "{backend:?}: full body despite never reading");
            server.shutdown();
        }
    }

    #[test]
    fn every_backend_slides_write_stall_only_on_progress() {
        // The converse: a reader that is slow but steady makes progress on
        // every chunk, so each flush slides the stall clock and a transfer
        // taking several multiples of the timeout still completes. A
        // backend that slides the clock on reads (or on no progress at
        // all) passes the test above but fails this one, and vice versa.
        //
        // Margins matter: the client's per-read gap must stay far under
        // the stall timeout even when a loaded single-CPU host deschedules
        // the client thread for hundreds of milliseconds — a too-tight
        // timeout turns scheduler noise into a legitimate-looking stall
        // and the test flakes. 25 ms cadence vs a 1.2 s timeout gives
        // ~50x headroom while the 320 KB body still takes several
        // timeouts' worth of wall clock to drain.
        let stall = Duration::from_millis(1200);
        let content = big_content(320 * 1024);
        let total = content.size_of(workload::FileId(0)) as usize;
        for backend in matrix_backends() {
            let server = start_backend_policy(
                backend,
                LifecyclePolicy {
                    write_stall_timeout: Some(stall),
                    ..LifecyclePolicy::default()
                }
                .with_buffers(16 * 1024, 16 * 1024),
                Arc::clone(&content),
            );
            let mut s = TcpStream::connect(server.addr()).unwrap();
            set_rcvbuf(&s, 8 * 1024).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .unwrap();
            let t0 = Instant::now();
            let mut got = Vec::new();
            let mut chunk = [0u8; 4 * 1024];
            loop {
                match s.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        got.extend_from_slice(&chunk[..n]);
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => panic!(
                        "{backend:?}: reset mid-transfer at {}/{total} after {:?} \
                         (write-stalls tallied: {}): {e}",
                        got.len(),
                        t0.elapsed(),
                        server.ends().get(obs::EndCause::WriteStall)
                    ),
                }
            }
            assert!(
                got.len() >= total,
                "{backend:?}: transfer truncated at {}/{total}",
                got.len()
            );
            assert!(
                t0.elapsed() > stall,
                "{backend:?}: transfer too fast to exercise the slide ({:?})",
                t0.elapsed()
            );
            assert_eq!(
                server.ends().get(obs::EndCause::WriteStall),
                0,
                "{backend:?}: steady progress must never trip the stall clock"
            );
            server.shutdown();
        }
    }
}
