//! The staged zero-copy reply path must be invisible on the wire: every
//! response the live server emits is compared **byte-for-byte** against a
//! reference rendering built the old way (head rendered with
//! `write_head_full`, body memcpy'd after it). Only the `Date` header is
//! taken from the live response, since the server stamps wall-clock time.

use desim::Rng;
use httpcore::{write_head, write_head_full, ContentStore, Status, Version};
use nioserver::{NioConfig, NioServer, BackendKind};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use workload::{FileId, FileSet, SurgeConfig};

fn content() -> Arc<ContentStore> {
    let mut rng = Rng::new(7);
    let fs = FileSet::build(
        &SurgeConfig {
            num_files: 20,
            tail_prob: 0.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    Arc::new(ContentStore::from_fileset(&fs))
}

fn start(backend: BackendKind, content: &Arc<ContentStore>) -> NioServer {
    NioServer::start(NioConfig {
        workers: 1,
        backend,
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content: Arc::clone(content),
    })
    .unwrap()
}

/// Send raw request bytes, read until the peer closes, return everything.
fn exchange(addr: SocketAddr, request: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    buf
}

/// The `Date` value the server stamped into this head.
fn extract_date(raw: &[u8]) -> String {
    let head = httpcore::parse_response_head(raw).unwrap().unwrap();
    let text = std::str::from_utf8(&raw[..head.head_len]).unwrap();
    text.split("\r\n")
        .find_map(|l| l.strip_prefix("Date: "))
        .expect("Date header present")
        .to_string()
}

/// Reference rendering of one reply exactly as the pre-zero-copy path
/// built it: head bytes, then the body appended by copy.
#[allow(clippy::too_many_arguments)]
fn reference(
    status: Status,
    content_length: usize,
    keep: bool,
    date: &str,
    last_modified: Option<&str>,
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::new();
    match last_modified {
        Some(lm) => {
            write_head_full(
                &mut out,
                Version::Http11,
                status,
                content_length,
                keep,
                date,
                Some(lm),
            );
        }
        None => {
            write_head(&mut out, Version::Http11, status, content_length, keep, date);
        }
    }
    out.extend_from_slice(body);
    out
}

fn both_selectors() -> [BackendKind; 2] {
    [BackendKind::Epoll, BackendKind::Poll]
}

#[test]
fn get_matches_copying_path_byte_for_byte() {
    let content = content();
    for sel in both_selectors() {
        let server = start(sel, &content);
        let raw = exchange(
            server.addr(),
            "GET /f/3 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        let date = extract_date(&raw);
        let body = content.body(FileId(3));
        let lm = content.last_modified(FileId(3));
        let expect = reference(Status::Ok, body.len(), false, &date, Some(lm), body);
        assert_eq!(raw, expect, "{sel:?}");
        server.shutdown();
    }
}

#[test]
fn head_matches_copying_path_byte_for_byte() {
    let content = content();
    for sel in both_selectors() {
        let server = start(sel, &content);
        let raw = exchange(
            server.addr(),
            "HEAD /f/5 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        let date = extract_date(&raw);
        let lm = content.last_modified(FileId(5));
        let len = content.size_of(FileId(5)) as usize;
        let expect = reference(Status::Ok, len, false, &date, Some(lm), &[]);
        assert_eq!(raw, expect, "{sel:?}");
        server.shutdown();
    }
}

#[test]
fn not_modified_matches_copying_path_byte_for_byte() {
    let content = content();
    for sel in both_selectors() {
        let server = start(sel, &content);
        let lm = content.last_modified(FileId(2));
        let raw = exchange(
            server.addr(),
            &format!(
                "GET /f/2 HTTP/1.1\r\nHost: t\r\nIf-Modified-Since: {lm}\r\nConnection: close\r\n\r\n"
            ),
        );
        let date = extract_date(&raw);
        let expect = reference(Status::NotModified, 0, false, &date, Some(lm), &[]);
        assert_eq!(raw, expect, "{sel:?}");
        server.shutdown();
    }
}

#[test]
fn not_found_matches_copying_path_byte_for_byte() {
    let content = content();
    for sel in both_selectors() {
        let server = start(sel, &content);
        let raw = exchange(
            server.addr(),
            "GET /missing HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        let date = extract_date(&raw);
        let expect = reference(Status::NotFound, 0, false, &date, None, &[]);
        assert_eq!(raw, expect, "{sel:?}");
        server.shutdown();
    }
}

#[test]
fn pipelined_burst_matches_copying_path_byte_for_byte() {
    // Five pipelined requests in one segment: the staged queue coalesces
    // several (head, body) pairs into vectored writes, and the result must
    // still be the exact concatenation of five independently rendered
    // replies, in order.
    let content = content();
    for sel in both_selectors() {
        let server = start(sel, &content);
        let mut request = String::new();
        for id in 0..4u32 {
            request.push_str(&format!("GET /f/{id} HTTP/1.1\r\nHost: t\r\n\r\n"));
        }
        request.push_str("GET /f/4 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        let raw = exchange(server.addr(), &request);

        let mut off = 0;
        let mut expect = Vec::new();
        for id in 0..5u32 {
            let head = httpcore::parse_response_head(&raw[off..])
                .expect("complete head")
                .expect("valid head");
            let date = extract_date(&raw[off..]);
            let body = content.body(FileId(id));
            let lm = content.last_modified(FileId(id));
            let keep = id != 4;
            expect.clear();
            expect.extend(reference(Status::Ok, body.len(), keep, &date, Some(lm), body));
            let got = &raw[off..off + head.head_len + head.content_length];
            assert_eq!(got, &expect[..], "{sel:?} reply {id}");
            off += head.head_len + head.content_length;
        }
        assert_eq!(off, raw.len(), "{sel:?}: trailing bytes after 5 replies");
        server.shutdown();
    }
}
