//! Steady-state allocation discipline: a keep-alive connection serving the
//! same file over and over must not allocate at all, in any thread.
//!
//! Everything on the per-request path is recycled — the parser's request
//! scratch through the worker's `RequestPool`, the response head through the
//! worker's `HeadPool`, the read buffer, the reply queue's segment ring, the
//! selector's event buffer. This test pins that property with a counting
//! global allocator: after a warmup that faults in every buffer, a burst of
//! identical pipeled-free requests must leave the allocation counter
//! untouched.
//!
//! The one deliberate allocation on the worker loop is the ~1 Hz HTTP-date
//! refresh (one `String` per second per worker). A measurement window is far
//! shorter than a second, but the refresh clock starts at worker spawn, so a
//! single window can straddle a tick; the test therefore takes several short
//! windows and requires that at least one is allocation-free, which the date
//! refresh cannot defeat (two ticks are a full second apart).

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use desim::Rng;
use httpcore::ContentStore;
use nioserver::{NioConfig, NioServer, BackendKind};
use workload::{FileSet, SurgeConfig};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn content() -> Arc<ContentStore> {
    let mut rng = Rng::new(7);
    let fs = FileSet::build(
        &SurgeConfig {
            num_files: 4,
            tail_prob: 0.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    Arc::new(ContentStore::from_fileset(&fs))
}

/// Send `n` identical keep-alive requests serially and read each full
/// response, using only the preallocated buffers. Returns total bytes read.
fn run_burst(stream: &mut TcpStream, req: &[u8], resp_len: usize, buf: &mut [u8], n: usize) -> usize {
    let mut total = 0usize;
    for _ in 0..n {
        stream.write_all(req).expect("write request");
        let mut got = 0usize;
        while got < resp_len {
            let k = stream.read(&mut buf[got..resp_len]).expect("read response");
            assert!(k > 0, "server closed mid-response");
            got += k;
        }
        total += got;
    }
    total
}

#[test]
fn steady_state_request_loop_allocates_nothing() {
    let server = NioServer::start(NioConfig {
        workers: 1,
        backend: BackendKind::Epoll,
        accept: faults::AcceptMode::Handoff,
        shed_watermark: None,
        lifecycle: Default::default(),
        content: content(),
    })
    .expect("server start");
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let req = b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n";
    let mut buf = vec![0u8; 256 * 1024];

    // Measure the response length once (identical requests → identical
    // responses; the Date header is fixed-width by construction).
    stream.write_all(req).expect("write probe");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let resp_len = stream.read(&mut buf).expect("read probe");
    assert!(resp_len > 0);
    let head = std::str::from_utf8(&buf[..resp_len.min(64)]).expect("utf8 head");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "probe response: {head:?}");

    // Warmup: fault in every recycled buffer on both sides of the socket
    // (parser scratch, head pool, read accumulation, reply ring, event
    // buffer) so the measured windows exercise only steady-state reuse.
    run_burst(&mut stream, req, resp_len, &mut buf, 64);

    // Several short windows; the ~1 Hz date refresh can straddle at most
    // one of them. Everything else on the path must never allocate.
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOC_EVENTS.load(Ordering::SeqCst);
        run_burst(&mut stream, req, resp_len, &mut buf, 256);
        let after = ALLOC_EVENTS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "steady-state keep-alive loop allocated in every window"
    );

    drop(stream);
    server.shutdown();
}
