//! Property tests: a [`connslab::Slab`] driven by an arbitrary
//! insert/remove/lookup schedule must agree with a `HashMap` reference
//! model keyed by handle, never alias a stale handle to a live entry, and
//! keep its storage dense (capacity bounded by peak simultaneous liveness).

use connslab::{Handle, Slab};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted operation. Indices are taken modulo the relevant live /
/// dead population so every generated script is meaningful.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64),
    /// Remove the i-th live handle.
    Remove(usize),
    /// Look up the i-th *stale* (already removed) handle — must miss.
    ProbeStale(usize),
}

fn decode(code: (u8, u64)) -> Op {
    match code.0 % 4 {
        0 | 1 => Op::Insert(code.1),
        2 => Op::Remove(code.1 as usize),
        _ => Op::ProbeStale(code.1 as usize),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The slab agrees with a HashMap reference model at every step: live
    /// handles resolve to their value (stable handles), removed handles
    /// miss forever (no alias), lengths match, and capacity never exceeds
    /// the peak live population (dense reuse).
    #[test]
    fn slab_matches_reference_model(
        script in proptest::collection::vec((any::<u8>(), 0u64..1_000_000), 1..400)
    ) {
        let mut slab: Slab<u64> = Slab::new();
        let mut model: HashMap<u64, u64> = HashMap::new(); // raw -> value
        let mut live: Vec<Handle> = Vec::new();
        let mut dead: Vec<Handle> = Vec::new();
        let mut peak = 0usize;

        for &code in &script {
            match decode(code) {
                Op::Insert(v) => {
                    let h = slab.insert(v);
                    prop_assert!(!model.contains_key(&h.raw()),
                        "handle {h:?} reissued while tracked");
                    model.insert(h.raw(), v);
                    live.push(h);
                }
                Op::Remove(i) => {
                    if live.is_empty() { continue; }
                    let h = live.swap_remove(i % live.len());
                    let want = model.remove(&h.raw());
                    prop_assert_eq!(slab.remove(h), want);
                    dead.push(h);
                }
                Op::ProbeStale(i) => {
                    if dead.is_empty() { continue; }
                    let h = dead[i % dead.len()];
                    prop_assert_eq!(slab.get(h), None, "stale handle resolved");
                    prop_assert!(!slab.contains(h));
                }
            }
            peak = peak.max(live.len());
            prop_assert_eq!(slab.len(), live.len());
            prop_assert!(slab.capacity() <= peak,
                "capacity {} exceeds peak live {}", slab.capacity(), peak);
            // Every live handle still resolves to its own value.
            for h in &live {
                prop_assert_eq!(slab.get(*h), model.get(&h.raw()));
            }
        }

        // Iteration covers exactly the live population.
        let mut seen: Vec<u64> = slab.iter().map(|(h, _)| h.raw()).collect();
        let mut expect: Vec<u64> = model.keys().copied().collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Packed-raw round trips survive any schedule, and no two handles ever
    /// packed by the slab collide while both are tracked (live or dead):
    /// the low 32 bits are a slab-wide monotone sequence.
    #[test]
    fn packed_handles_are_unique_and_roundtrip(
        script in proptest::collection::vec((any::<u8>(), 0u64..100), 1..300)
    ) {
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<Handle> = Vec::new();
        let mut ever: Vec<u64> = Vec::new();
        for &code in &script {
            match decode(code) {
                Op::Insert(v) => {
                    let h = slab.insert(v);
                    prop_assert_eq!(Handle::from_raw(h.raw()), h);
                    prop_assert!(h.raw() != 0 && h.raw() < u64::MAX / 2);
                    prop_assert!(!ever.contains(&h.raw()), "raw reissued");
                    ever.push(h.raw());
                    live.push(h);
                }
                Op::Remove(i) | Op::ProbeStale(i) => {
                    if live.is_empty() { continue; }
                    let h = live.swap_remove(i % live.len());
                    slab.remove(h);
                }
            }
        }
    }
}
