//! `connslab` — generation-tagged slab storage for per-connection state.
//!
//! A million open connections is a memory/state problem before it is a CPU
//! problem: per-connection `HashMap` entries cost hashing on every event,
//! scatter connection state across the heap, and make any full-table
//! maintenance scan O(total-ever-opened buckets). A [`Slab`] instead keeps
//! connections in a dense `Vec` whose slots are recycled through a LIFO free
//! list, so
//!
//! * a [`Handle`] lookup is two bounds-free-after-the-first-check array
//!   steps (index, then a generation compare) — no hashing;
//! * storage never exceeds the *peak* number of simultaneously live
//!   connections, regardless of how many have ever been opened;
//! * iteration walks `O(peak live)` contiguous slots, not hash buckets.
//!
//! **Generation tags.** Slot reuse creates an aliasing hazard the old
//! sequential-token scheme never had: a stale reference to a closed
//! connection (a queued selector event, an in-flight deadline-wheel entry, a
//! drain list) must not resolve to whatever connection now occupies the
//! reused slot. Every insertion therefore stamps the slot with a fresh
//! sequence number drawn from a slab-wide monotone counter, and the
//! [`Handle`] carries that stamp: a lookup whose stamp disagrees with the
//! slot's current one returns `None`, exactly as a `HashMap` miss on a
//! never-reused key would.
//!
//! **Packed representation.** A handle packs to a single `u64`
//! (`index << 32 | seq`) suitable for use as a selector token:
//!
//! * `seq` is never 0, so a packed handle is never 0 (token 0 is the
//!   waker's in the live server);
//! * the index is capped at 2³⁰ slots, so a packed handle is `< 2⁶²`,
//!   comfortably below the live server's listener-token range at
//!   `usize::MAX / 2`;
//! * the low 32 bits are the slab-wide insertion sequence — monotone per
//!   insertion — so consumers that derive placement from the low bits of a
//!   connection id (the sim's SO_REUSEPORT shard hash) observe the same
//!   round-robin spread as with sequential ids.

/// Hard cap on slot indices so packed handles stay below `usize::MAX / 2`
/// (the live server's listener-token base) with room to spare.
const MAX_SLOTS: u32 = 1 << 30;

/// A generation-tagged reference to a slab slot.
///
/// Copyable, `!= 0` when packed, and stale-safe: after the referenced entry
/// is removed, the handle keeps failing lookups forever (until the slab-wide
/// 32-bit insertion counter wraps — four billion insertions — by which time
/// any stale selector event or wheel entry is long gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    idx: u32,
    seq: u32,
}

impl Handle {
    /// Slot index (dense: `< capacity()` of the owning slab).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }

    /// Generation stamp (never 0 for a handle produced by `insert`).
    #[inline]
    pub fn seq(self) -> u32 {
        self.seq
    }

    /// Pack to `idx << 32 | seq`. Never 0; always `< 2^62`.
    #[inline]
    pub fn raw(self) -> u64 {
        ((self.idx as u64) << 32) | self.seq as u64
    }

    /// Unpack a raw value. Total (never panics): garbage input yields a
    /// handle that fails every lookup, matching `HashMap` miss semantics.
    #[inline]
    pub fn from_raw(raw: u64) -> Handle {
        Handle {
            idx: (raw >> 32) as u32,
            seq: raw as u32,
        }
    }
}

#[derive(Debug)]
struct Slot<T> {
    /// Stamp of the current occupant; 0 while vacant.
    seq: u32,
    val: Option<T>,
}

/// A slab of `T` with generation-tagged handles and dense slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Vacant slot indices, reused LIFO so the occupied prefix stays dense
    /// and recently-freed slots (warm cache lines) are reused first.
    free: Vec<u32>,
    len: usize,
    /// Slab-wide insertion counter; the next handle's stamp. Starts at 1
    /// and skips 0 on wrap so a live slot's stamp is never the vacant
    /// marker.
    next_seq: u32,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            next_seq: 1,
        }
    }

    pub fn with_capacity(cap: usize) -> Slab<T> {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
            next_seq: 1,
        }
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever materialised — the high-watermark of simultaneously live
    /// entries, *not* the total ever inserted.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn fresh_seq(&mut self) -> u32 {
        let seq = self.next_seq;
        self.next_seq = match self.next_seq.wrapping_add(1) {
            0 => 1,
            n => n,
        };
        seq
    }

    /// Insert a value, returning its handle.
    pub fn insert(&mut self, val: T) -> Handle {
        self.insert_with(|_| val)
    }

    /// Insert a value built from its own handle (for entries that must
    /// record their identity, e.g. a sim connection carrying its id).
    pub fn insert_with(&mut self, make: impl FnOnce(Handle) -> T) -> Handle {
        let seq = self.fresh_seq();
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots.len() as u32;
                assert!(idx < MAX_SLOTS, "connslab exceeded 2^30 live entries");
                self.slots.push(Slot { seq: 0, val: None });
                idx
            }
        };
        let h = Handle { idx, seq };
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.val.is_none(), "free-listed slot was occupied");
        slot.seq = seq;
        slot.val = Some(make(h));
        self.len += 1;
        h
    }

    #[inline]
    fn slot(&self, h: Handle) -> Option<&Slot<T>> {
        self.slots
            .get(h.idx as usize)
            .filter(|s| s.seq == h.seq && h.seq != 0)
    }

    /// Look up a live entry; `None` for stale or garbage handles.
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        self.slot(h).and_then(|s| s.val.as_ref())
    }

    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        match self.slots.get_mut(h.idx as usize) {
            Some(s) if s.seq == h.seq && h.seq != 0 => s.val.as_mut(),
            _ => None,
        }
    }

    #[inline]
    pub fn contains(&self, h: Handle) -> bool {
        self.slot(h).is_some()
    }

    /// Remove and return a live entry; stale handles remove nothing.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        match self.slots.get_mut(h.idx as usize) {
            Some(s) if s.seq == h.seq && h.seq != 0 => {
                let val = s.val.take();
                debug_assert!(val.is_some(), "stamped slot had no value");
                s.seq = 0;
                self.free.push(h.idx);
                self.len -= 1;
                val
            }
            _ => None,
        }
    }

    /// Iterate live entries in slot order: `O(capacity)` ≈ `O(peak live)`.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            let val = s.val.as_ref()?;
            Some((
                Handle {
                    idx: i as u32,
                    seq: s.seq,
                },
                val,
            ))
        })
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let val = s.val.as_mut()?;
            Some((
                Handle {
                    idx: i as u32,
                    seq: s.seq,
                },
                val,
            ))
        })
    }

    /// Keep entries for which `keep` returns true; drop the rest.
    pub fn retain(&mut self, mut keep: impl FnMut(Handle, &mut T) -> bool) {
        for i in 0..self.slots.len() {
            let slot = &mut self.slots[i];
            let Some(val) = slot.val.as_mut() else {
                continue;
            };
            let h = Handle {
                idx: i as u32,
                seq: slot.seq,
            };
            if !keep(h, val) {
                slot.val = None;
                slot.seq = 0;
                self.free.push(i as u32);
                self.len -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn stale_handle_never_aliases_reused_slot() {
        let mut s = Slab::new();
        let old = s.insert(1u32);
        s.remove(old);
        let new = s.insert(2u32);
        // The slot is reused (dense) ...
        assert_eq!(new.index(), old.index());
        // ... but the stale handle keeps missing, in every access form.
        assert_eq!(s.get(old), None);
        assert_eq!(s.get_mut(old), None);
        assert!(!s.contains(old));
        assert_eq!(s.remove(old), None);
        assert_eq!(s.get(new), Some(&2));
    }

    #[test]
    fn capacity_tracks_peak_not_total() {
        let mut s = Slab::new();
        // 1000 sequential open/close cycles with ≤ 3 live at once.
        let mut live = Vec::new();
        for i in 0..1000u32 {
            live.push(s.insert(i));
            if live.len() > 3 {
                let h = live.remove(0);
                assert_eq!(s.remove(h), Some(i - 3));
            }
        }
        assert!(s.capacity() <= 4, "capacity {} > peak live", s.capacity());
    }

    #[test]
    fn packed_raw_roundtrips_and_respects_token_invariants() {
        let mut s = Slab::new();
        for i in 0..100u32 {
            let h = s.insert(i);
            let raw = h.raw();
            assert_ne!(raw, 0, "packed handle must never be the waker token");
            assert!(raw < u64::MAX / 2, "packed handle in listener range");
            assert_eq!(Handle::from_raw(raw), h);
            assert_eq!(s.get(Handle::from_raw(raw)), Some(&i));
        }
    }

    #[test]
    fn low_bits_are_monotone_insertion_sequence() {
        let mut s = Slab::new();
        let mut prev = 0u32;
        for i in 0..50u32 {
            let h = s.insert(i);
            assert_eq!(h.seq(), prev + 1, "seq must increment per insertion");
            prev = h.seq();
            if i % 3 == 0 {
                s.remove(h);
            }
        }
    }

    #[test]
    fn garbage_raw_handles_are_total() {
        let s: Slab<u8> = Slab::new();
        for raw in [0u64, 1, u64::MAX, u64::MAX / 2, 1 << 32] {
            assert_eq!(s.get(Handle::from_raw(raw)), None);
        }
    }

    #[test]
    fn iter_and_retain_walk_live_entries() {
        let mut s = Slab::new();
        let hs: Vec<_> = (0..10u32).map(|i| s.insert(i)).collect();
        for h in hs.iter().step_by(2) {
            s.remove(*h);
        }
        let seen: Vec<u32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![1, 3, 5, 7, 9]);
        s.retain(|_, v| *v > 4);
        let seen: Vec<u32> = s.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![5, 7, 9]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn seq_wrap_skips_zero() {
        let mut s: Slab<u8> = Slab::new();
        s.next_seq = u32::MAX;
        let a = s.insert(1);
        assert_eq!(a.seq(), u32::MAX);
        let b = s.insert(2);
        assert_eq!(b.seq(), 1, "wrap must skip the vacant marker 0");
        assert_eq!(s.get(a), Some(&1));
        assert_eq!(s.get(b), Some(&2));
    }
}
