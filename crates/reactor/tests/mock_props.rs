//! Property tests for the deterministic mock-completion backend — the
//! tier-1 stand-in for io_uring semantics. Each property drives the
//! backend the way `nioserver`'s pump does (at most one read and one
//! write in flight per connection, resubmit after a no-progress EAGAIN
//! completion, advance by exactly the completed byte count) and asserts
//! the backend contract of DESIGN.md §16 under seeded completion-order
//! permutations, short-chunk injection, and bounded queues:
//!
//! * buffer ownership round-trips — every data-carrying `ReadDone` hands
//!   back an owned buffer whose first `n` bytes are the payload, and
//!   recycling it for the next submission never corrupts delivery;
//! * completion-order permutations preserve per-connection reply order —
//!   whatever order the script executes ops across connections, each
//!   connection's byte stream arrives exactly as submitted;
//! * SQ-full backpressure never drops a submission — a refused submit
//!   leaves no residue, and every accepted op completes exactly once.

use proptest::prelude::*;
use reactor::{Backend, Cqe, CqeKind, Interest, MockCompletionBackend, MockConfig, Token};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
    let (b, _) = listener.accept().unwrap();
    a.set_nonblocking(true).unwrap();
    (a, b)
}

/// Deterministic per-index payload, distinct across (conn, message, byte).
fn payload(conn: usize, msg: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (conn.wrapping_mul(31) ^ msg.wrapping_mul(7) ^ i) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reads round-trip through backend-owned buffers: the client writes a
    /// seeded byte stream; the server keeps one read in flight, recycles
    /// every returned buffer, resubmits after EAGAIN injections, and must
    /// reassemble the exact stream from `buf[..n]` slices.
    #[test]
    fn read_buffers_round_trip_exactly(
        seed in any::<u64>(),
        chunks in proptest::collection::vec(1usize..2000, 1..8),
    ) {
        let (server_side, mut client) = pair();
        let mut b = MockCompletionBackend::new(MockConfig {
            seed,
            // Hostile chunking: completions are forced short.
            max_read_chunk: 512,
            ..MockConfig::default()
        });
        let fd = server_side.as_raw_fd();
        let token = Token(3);
        b.register_conn(fd, token, Interest::READABLE).unwrap();

        let mut sent = Vec::new();
        for (i, len) in chunks.iter().enumerate() {
            sent.extend_from_slice(&payload(0, i, *len));
        }
        client.write_all(&sent).unwrap();
        drop(client); // EOF terminates the reassembly loop

        b.submit_read(fd, token).unwrap();
        let mut got = Vec::new();
        let mut inflight = true;
        let mut cqes: Vec<Cqe> = Vec::new();
        for _ in 0..10_000 {
            if !inflight {
                b.submit_read(fd, token).unwrap();
                inflight = true;
            }
            cqes.clear();
            b.wait(&mut cqes, Some(Duration::from_millis(100))).unwrap();
            let mut eof = false;
            for cqe in cqes.drain(..) {
                prop_assert_eq!(cqe.token, token);
                match cqe.kind {
                    CqeKind::ReadDone { buf, n, err } => {
                        inflight = false;
                        match err {
                            Some(e) => prop_assert_eq!(e, reactor::backend::EAGAIN),
                            None if n == 0 => eof = true,
                            None => got.extend_from_slice(&buf[..n]),
                        }
                        b.recycle(buf);
                    }
                    other => prop_assert!(false, "unexpected cqe {:?}", other),
                }
            }
            if eof {
                break;
            }
        }
        prop_assert_eq!(&got, &sent, "reassembled stream differs from submitted stream");
    }

    /// Per-connection write order survives any completion-order
    /// permutation: several connections each submit a message sequence
    /// (one write op in flight at a time, advancing by the completed byte
    /// count); the scripted shuffle interleaves executions across
    /// connections, yet each client must observe its own messages intact
    /// and in submission order.
    #[test]
    fn completion_permutations_preserve_reply_order(
        seed in any::<u64>(),
        plan in proptest::collection::vec(
            proptest::collection::vec(1usize..3000, 1..5),
            2..5,
        ),
    ) {
        let mut b = MockCompletionBackend::new(MockConfig {
            seed,
            max_write_chunk: 700, // force mid-message short completions
            ..MockConfig::default()
        });
        struct Side {
            server: TcpStream,
            client: TcpStream,
            queue: Vec<u8>,   // bytes owed to the peer, in order
            cursor: usize,    // how many of them the backend has confirmed
            inflight: bool,
            got: Vec<u8>,     // what the client has observed so far
        }
        let mut sides: Vec<Side> = Vec::new();
        for (ci, msgs) in plan.iter().enumerate() {
            let (server, client) = pair();
            client.set_nonblocking(true).unwrap();
            let mut queue = Vec::new();
            for (mi, len) in msgs.iter().enumerate() {
                queue.extend_from_slice(&payload(ci, mi, *len));
            }
            let fd = server.as_raw_fd();
            b.register_conn(fd, Token(ci), Interest::WRITABLE).unwrap();
            sides.push(Side {
                server,
                client,
                queue,
                cursor: 0,
                inflight: false,
                got: Vec::new(),
            });
        }

        let mut cqes: Vec<Cqe> = Vec::new();
        for _ in 0..20_000 {
            let mut all_done = true;
            for (ci, s) in sides.iter_mut().enumerate() {
                if s.cursor < s.queue.len() {
                    all_done = false;
                    if !s.inflight {
                        let end = (s.cursor + 700).min(s.queue.len());
                        b.submit_write(s.server.as_raw_fd(), Token(ci), &s.queue[s.cursor..end])
                            .unwrap();
                        s.inflight = true;
                    }
                }
            }
            if all_done {
                break;
            }
            cqes.clear();
            b.wait(&mut cqes, Some(Duration::from_millis(100))).unwrap();
            for cqe in cqes.drain(..) {
                // The mock stamps each CQE with the token the conn
                // registered under, which is its index in `sides`.
                let s = &mut sides[cqe.token.0];
                match cqe.kind {
                    CqeKind::WriteDone { n, err } => {
                        s.inflight = false;
                        match err {
                            Some(e) => prop_assert_eq!(e, reactor::backend::EAGAIN),
                            None => s.cursor += n,
                        }
                    }
                    other => prop_assert!(false, "unexpected cqe {:?}", other),
                }
            }
            // Clients drain as the script progresses so kernel buffers
            // never wedge the writers.
            for s in sides.iter_mut() {
                let mut chunk = [0u8; 4096];
                while let Ok(n) = s.client.read(&mut chunk) {
                    if n == 0 {
                        break;
                    }
                    s.got.extend_from_slice(&chunk[..n]);
                }
            }
        }
        for s in &sides {
            prop_assert_eq!(s.cursor, s.queue.len(), "writer never finished");
        }
        // Pull the undrained tails still sitting in kernel buffers.
        for (ci, s) in sides.iter_mut().enumerate() {
            let mut chunk = [0u8; 4096];
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while s.got.len() < s.queue.len() {
                match s.client.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => s.got.extend_from_slice(&chunk[..n]),
                    Err(_) => {
                        prop_assert!(
                            std::time::Instant::now() < deadline,
                            "conn {} stalled at {}/{}", ci, s.got.len(), s.queue.len()
                        );
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            prop_assert_eq!(&s.got, &s.queue, "conn {} bytes out of order or corrupt", ci);
        }
    }

    /// A bounded SQ refuses loudly and loses nothing: with a tiny queue
    /// and more connections than slots, some submissions bounce with
    /// `SqFull`. Retrying after the next `wait` must eventually accept
    /// every one, and each accepted read completes exactly once with its
    /// connection's distinct payload.
    #[test]
    fn sq_full_backpressure_never_drops_a_submission(
        seed in any::<u64>(),
        sq_capacity in 1usize..4,
        extra in 1usize..5,
    ) {
        let n_conns = sq_capacity + extra;
        let mut b = MockCompletionBackend::new(MockConfig {
            seed,
            sq_capacity,
            ..MockConfig::default()
        });
        const MSG: usize = 64;
        let mut pairs = Vec::new();
        for i in 0..n_conns {
            let (server, mut client) = pair();
            b.register_conn(server.as_raw_fd(), Token(i), Interest::READABLE).unwrap();
            client.write_all(&payload(i, 0, MSG)).unwrap();
            pairs.push((server, client));
        }

        let mut pending: Vec<bool> = vec![false; n_conns]; // op in flight
        let mut got: Vec<Vec<u8>> = vec![Vec::new(); n_conns];
        let mut saw_sq_full = false;
        let mut cqes: Vec<Cqe> = Vec::new();
        for _ in 0..10_000 {
            for i in 0..n_conns {
                // Short-read injection means one message may take several
                // completions: keep an op in flight until all bytes land.
                if got[i].len() >= MSG || pending[i] {
                    continue;
                }
                match b.submit_read(pairs[i].0.as_raw_fd(), Token(i)) {
                    Ok(()) => pending[i] = true,
                    Err(reactor::SubmitError::SqFull) => saw_sq_full = true,
                }
            }
            if got.iter().all(|g| g.len() >= MSG) {
                break;
            }
            cqes.clear();
            b.wait(&mut cqes, Some(Duration::from_millis(100))).unwrap();
            for cqe in cqes.drain(..) {
                let i = cqe.token.0;
                match cqe.kind {
                    CqeKind::ReadDone { buf, n, err } => {
                        prop_assert!(pending[i], "completion for an op never accepted");
                        pending[i] = false;
                        match err {
                            Some(e) => prop_assert_eq!(e, reactor::backend::EAGAIN),
                            None => {
                                prop_assert!(n > 0, "unexpected EOF on conn {}", i);
                                got[i].extend_from_slice(&buf[..n]);
                            }
                        }
                        b.recycle(buf);
                    }
                    other => prop_assert!(false, "unexpected cqe {:?}", other),
                }
            }
        }
        // With more conns than SQ slots the first submission round must
        // have bounced at least once — otherwise the bound isn't real.
        prop_assert!(saw_sq_full, "SQ of {} never refused {} conns", sq_capacity, n_conns);
        for (i, g) in got.iter().enumerate() {
            prop_assert_eq!(g, &payload(i, 0, MSG), "conn {} payload lost or corrupt", i);
        }
    }
}
