//! The real `io_uring(7)` completion backend — raw syscalls, no crates,
//! same shape as SNIPPETS.md snippet 2's owned-buffer completion loop.
//!
//! Scope is deliberately the subset the [`Backend`] contract needs:
//!
//! * `IORING_OP_READ` / `IORING_OP_WRITE` for connection I/O, one op per
//!   direction per token, with backend-owned buffers (reads draw from a
//!   recycle pool; writes copy at submit).
//! * Single-shot `IORING_OP_POLL_ADD` for readiness-only fds (listeners,
//!   wakers), re-armed on every delivery so the caller sees level-style
//!   `Ready` events.
//! * `IORING_OP_ASYNC_CANCEL` (by op id) at `deregister`, so a torn-down
//!   connection's in-flight ops drain as `ECANCELED` token-misses.
//! * `io_uring_enter(EXT_ARG)` for bounded waits — no timeout sqe
//!   bookkeeping, one syscall per reap.
//!
//! Tokens are arbitrary `usize` values (the slab packs a generation into
//! the high bits, listener tokens sit near `usize::MAX/2`), so `user_data`
//! cannot carry the token directly with tag bits; instead every op gets a
//! fresh 64-bit id mapped to `(kind, token, fd)` in [`UringBackend::ops`].
//!
//! [`UringBackend::probe`] builds a ring and pushes a NOP through a
//! timed `enter` before declaring the backend usable — kernels (or seccomp
//! policies) that refuse `io_uring_setup`, or predate `EXT_ARG`
//! (< 5.11), fail the probe and [`crate::backend::create`] falls back to
//! epoll readiness. The suites treat that as skip, not failure.

use crate::backend::{Backend, BackendKind, Cqe, CqeKind, SubmitError};
use crate::selector::{Interest, Token};
use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const SYS_IO_URING_SETUP: i64 = 425;
const SYS_IO_URING_ENTER: i64 = 426;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;

const IORING_ENTER_GETEVENTS: u32 = 1 << 0;
const IORING_ENTER_EXT_ARG: u32 = 1 << 3;

const IORING_OP_NOP: u8 = 0;
const IORING_OP_POLL_ADD: u8 = 6;
const IORING_OP_ASYNC_CANCEL: u8 = 14;
const IORING_OP_READ: u8 = 22;
const IORING_OP_WRITE: u8 = 23;

const POLLIN: u32 = 0x001;
const POLLOUT: u32 = 0x004;
const POLLERR: u32 = 0x008;
const POLLHUP: u32 = 0x010;
const POLLRDHUP: u32 = 0x2000;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 0x01;
const MAP_POPULATE: i32 = 0x8000;

const EINTR: i32 = 4;
const ETIME: i32 = 62;
const READ_BUF: usize = 64 * 1024;
const RING_ENTRIES: u32 = 256;

#[repr(C)]
#[derive(Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    op_flags: u32,
    user_data: u64,
    buf_index: u16,
    personality: u16,
    splice_fd_in: i32,
    pad2: [u64; 2],
}

#[repr(C)]
#[derive(Clone, Copy)]
struct RawCqe {
    user_data: u64,
    res: i32,
    flags: u32,
}

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[repr(C)]
struct GeteventsArg {
    sigmask: u64,
    sigmask_sz: u32,
    pad: u32,
    ts: u64,
}

extern "C" {
    fn syscall(num: i64, ...) -> i64;
    fn mmap(
        addr: *mut std::os::raw::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        off: i64,
    ) -> *mut std::os::raw::c_void;
    fn munmap(addr: *mut std::os::raw::c_void, len: usize) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt64(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One mmapped region (unmapped on drop).
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

impl Mapping {
    fn new(ring_fd: RawFd, len: usize, offset: i64) -> io::Result<Mapping> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                ring_fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr: ptr as *mut u8, len })
    }

    /// # Safety
    /// `off` must lie inside the mapping and point at a `T` the kernel
    /// placed there (ring offsets from `io_uring_setup`).
    unsafe fn at<T>(&self, off: u32) -> *mut T {
        self.ptr.add(off as usize) as *mut T
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe { munmap(self.ptr as *mut _, self.len) };
    }
}

/// What an in-flight op id resolves to when its CQE lands.
enum OpRec {
    Read { token: Token, buf: Vec<u8> },
    Write { token: Token, buf: Vec<u8> },
    Poll { fd: RawFd },
    /// NOP / cancel / probe plumbing — CQE dropped on the floor.
    Internal,
}

/// See the module docs.
pub struct UringBackend {
    ring_fd: RawFd,
    // Mappings are held only so Drop unmaps them; all access goes through
    // the raw pointers below.
    #[allow(dead_code)]
    sq_ring: Mapping,
    /// `None` when `IORING_FEAT_SINGLE_MMAP` folded the CQ into `sq_ring`.
    #[allow(dead_code)]
    cq_ring: Option<Mapping>,
    sqes: Mapping,

    // SQ ring geometry (pointers into sq_ring).
    sq_khead: *const u32,
    sq_ktail: *mut u32,
    sq_mask: u32,
    sq_entries: u32,
    sq_array: *mut u32,
    /// Local shadow of the SQ tail.
    sq_tail: u32,
    /// SQEs pushed since the last `enter`.
    to_submit: u32,

    // CQ ring geometry.
    cq_khead: *mut u32,
    cq_ktail: *const u32,
    cq_mask: u32,
    cqes: *const RawCqe,

    next_op: u64,
    ops: HashMap<u64, OpRec>,
    /// Per-fd in-flight op ids, for targeted cancel at deregister.
    conn_ops: HashMap<RawFd, Vec<u64>>,
    /// Readiness registrations: fd → (token, interest, armed op id).
    polls: HashMap<RawFd, (Token, Interest, Option<u64>)>,
    /// Conn registrations (`registered()` and sanity only).
    conns: HashMap<RawFd, Token>,
    /// Cancels / poll re-arms that hit a full SQ, retried each wait.
    deferred: Vec<Sqe>,
    pool: Vec<Vec<u8>>,
}

// The ring is owned by one worker thread; raw pointers refer to mappings
// that move with the struct.
unsafe impl Send for UringBackend {}

impl UringBackend {
    /// Build a ring and prove it works end to end (NOP through a timed
    /// `EXT_ARG` enter). `None` on any refusal — caller falls back.
    pub fn probe() -> Option<UringBackend> {
        let mut b = UringBackend::new(RING_ENTRIES).ok()?;
        let id = b.op_id();
        b.ops.insert(id, OpRec::Internal);
        let sqe = Sqe {
            opcode: IORING_OP_NOP,
            user_data: id,
            ..Sqe::default()
        };
        if b.push_sqe(sqe).is_err() {
            return None;
        }
        let mut out = Vec::new();
        // A NOP completes immediately; one timed enter must reap it.
        match b.wait(&mut out, Some(Duration::from_millis(100))) {
            Ok(_) if b.ops.is_empty() => Some(b),
            _ => None,
        }
    }

    fn new(entries: u32) -> io::Result<UringBackend> {
        let mut params = UringParams::default();
        let ring_fd = cvt64(unsafe {
            syscall(SYS_IO_URING_SETUP, entries, &mut params as *mut UringParams)
        })? as RawFd;
        // From here on, any failure must close the fd; wrap early.
        let build = (|| -> io::Result<UringBackend> {
            let sq_size = params.sq_off.array as usize
                + params.sq_entries as usize * std::mem::size_of::<u32>();
            let cq_size = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<RawCqe>();
            let single = params.features & IORING_FEAT_SINGLE_MMAP != 0;
            let sq_ring = Mapping::new(
                ring_fd,
                if single { sq_size.max(cq_size) } else { sq_size },
                IORING_OFF_SQ_RING,
            )?;
            let cq_ring = if single {
                None
            } else {
                Some(Mapping::new(ring_fd, cq_size, IORING_OFF_CQ_RING)?)
            };
            let sqes = Mapping::new(
                ring_fd,
                params.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;
            let cqm = cq_ring.as_ref().unwrap_or(&sq_ring);
            let backend = unsafe {
                UringBackend {
                    sq_khead: sq_ring.at(params.sq_off.head),
                    sq_ktail: sq_ring.at(params.sq_off.tail),
                    sq_mask: *sq_ring.at::<u32>(params.sq_off.ring_mask),
                    sq_entries: params.sq_entries,
                    sq_array: sq_ring.at(params.sq_off.array),
                    sq_tail: *sq_ring.at::<u32>(params.sq_off.tail),
                    cq_khead: cqm.at(params.cq_off.head),
                    cq_ktail: cqm.at(params.cq_off.tail),
                    cq_mask: *cqm.at::<u32>(params.cq_off.ring_mask),
                    cqes: cqm.at(params.cq_off.cqes),
                    ring_fd,
                    sq_ring,
                    cq_ring,
                    sqes,
                    to_submit: 0,
                    next_op: 1,
                    ops: HashMap::new(),
                    conn_ops: HashMap::new(),
                    polls: HashMap::new(),
                    conns: HashMap::new(),
                    deferred: Vec::new(),
                    pool: Vec::new(),
                }
            };
            Ok(backend)
        })();
        if build.is_err() {
            unsafe { close(ring_fd) };
        }
        build
    }

    fn op_id(&mut self) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        id
    }

    /// Write an SQE into the ring. `SqFull` when a full ring's worth is
    /// already pending unsubmitted-or-unreaped.
    fn push_sqe(&mut self, sqe: Sqe) -> Result<(), SubmitError> {
        let head = unsafe { atomic_load(self.sq_khead) };
        if self.sq_tail.wrapping_sub(head) >= self.sq_entries {
            return Err(SubmitError::SqFull);
        }
        let idx = self.sq_tail & self.sq_mask;
        unsafe {
            self.sqes.at::<Sqe>(0).add(idx as usize).write(sqe);
            self.sq_array.add(idx as usize).write(idx);
        }
        self.sq_tail = self.sq_tail.wrapping_add(1);
        unsafe { atomic_store(self.sq_ktail, self.sq_tail) };
        self.to_submit += 1;
        Ok(())
    }

    /// Best-effort push for internal ops (cancel, poll re-arm): a full SQ
    /// defers to the next wait instead of failing the caller.
    fn push_or_defer(&mut self, sqe: Sqe) {
        if let Err(SubmitError::SqFull) = self.push_sqe(sqe) {
            self.deferred.push(sqe);
        }
    }

    fn flush_deferred(&mut self) {
        let deferred = std::mem::take(&mut self.deferred);
        for sqe in deferred {
            self.push_or_defer(sqe);
        }
    }

    fn arm_poll(&mut self, fd: RawFd, interest: Interest) {
        let mut mask = POLLERR | POLLHUP;
        if interest.readable {
            mask |= POLLIN | POLLRDHUP;
        }
        if interest.writable {
            mask |= POLLOUT;
        }
        let id = self.op_id();
        self.ops.insert(id, OpRec::Poll { fd });
        if let Some(p) = self.polls.get_mut(&fd) {
            p.2 = Some(id);
        }
        let sqe = Sqe {
            opcode: IORING_OP_POLL_ADD,
            fd,
            op_flags: mask,
            user_data: id,
            ..Sqe::default()
        };
        self.push_or_defer(sqe);
    }

    fn cancel_op(&mut self, target: u64) {
        let id = self.op_id();
        self.ops.insert(id, OpRec::Internal);
        let sqe = Sqe {
            opcode: IORING_OP_ASYNC_CANCEL,
            fd: -1,
            addr: target,
            user_data: id,
            ..Sqe::default()
        };
        self.push_or_defer(sqe);
    }

    fn cq_ready(&self) -> u32 {
        let head = unsafe { atomic_load(self.cq_khead) };
        let tail = unsafe { atomic_load(self.cq_ktail) };
        tail.wrapping_sub(head)
    }

    fn enter(&mut self, min_complete: u32, timeout: Option<Duration>) -> io::Result<()> {
        let to_submit = self.to_submit;
        let ret = if min_complete == 0 && timeout.is_none() {
            if to_submit == 0 {
                return Ok(());
            }
            unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    self.ring_fd,
                    to_submit,
                    0u32,
                    0u32,
                    std::ptr::null::<u8>(),
                    0usize,
                )
            }
        } else {
            match timeout {
                Some(t) => {
                    let ts = Timespec {
                        tv_sec: t.as_secs() as i64,
                        tv_nsec: t.subsec_nanos() as i64,
                    };
                    let arg = GeteventsArg {
                        sigmask: 0,
                        sigmask_sz: 0,
                        pad: 0,
                        ts: &ts as *const Timespec as u64,
                    };
                    unsafe {
                        syscall(
                            SYS_IO_URING_ENTER,
                            self.ring_fd,
                            to_submit,
                            min_complete,
                            IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                            &arg as *const GeteventsArg,
                            std::mem::size_of::<GeteventsArg>(),
                        )
                    }
                }
                None => unsafe {
                    syscall(
                        SYS_IO_URING_ENTER,
                        self.ring_fd,
                        to_submit,
                        min_complete,
                        IORING_ENTER_GETEVENTS,
                        std::ptr::null::<u8>(),
                        0usize,
                    )
                },
            }
        };
        if ret < 0 {
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                // Timed out / interrupted: not failures, just no events.
                Some(e) if e == ETIME || e == EINTR => {
                    self.to_submit = 0;
                    Ok(())
                }
                _ => Err(err),
            }
        } else {
            self.to_submit = 0;
            Ok(())
        }
    }

    /// Reap everything currently in the CQ into `out`.
    fn reap(&mut self, out: &mut Vec<Cqe>) {
        loop {
            let head = unsafe { atomic_load(self.cq_khead) };
            let tail = unsafe { atomic_load(self.cq_ktail) };
            if head == tail {
                return;
            }
            let raw = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            unsafe { atomic_store(self.cq_khead, head.wrapping_add(1)) };
            let Some(rec) = self.ops.remove(&raw.user_data) else {
                continue;
            };
            match rec {
                OpRec::Read { token, buf } => {
                    self.untrack(token, raw.user_data);
                    let kind = if raw.res < 0 {
                        CqeKind::ReadDone { buf, n: 0, err: Some(-raw.res) }
                    } else {
                        CqeKind::ReadDone { buf, n: raw.res as usize, err: None }
                    };
                    out.push(Cqe { token, kind });
                }
                OpRec::Write { token, buf } => {
                    self.untrack(token, raw.user_data);
                    self.pool.push(buf);
                    let kind = if raw.res < 0 {
                        CqeKind::WriteDone { n: 0, err: Some(-raw.res) }
                    } else {
                        CqeKind::WriteDone { n: raw.res as usize, err: None }
                    };
                    out.push(Cqe { token, kind });
                }
                OpRec::Poll { fd } => {
                    // Single-shot: deliver and re-arm while the fd is
                    // still registered. A cancelled poll (res < 0) stays
                    // down.
                    if let Some(&(token, interest, _)) = self.polls.get(&fd) {
                        if raw.res >= 0 {
                            let revents = raw.res as u32;
                            out.push(Cqe {
                                token,
                                kind: CqeKind::Ready {
                                    readable: revents & POLLIN != 0,
                                    writable: revents & POLLOUT != 0,
                                    error: revents & (POLLERR | POLLHUP | POLLRDHUP) != 0,
                                },
                            });
                            self.arm_poll(fd, interest);
                        }
                    }
                }
                OpRec::Internal => {}
            }
        }
    }

    fn untrack(&mut self, _token: Token, id: u64) {
        for ids in self.conn_ops.values_mut() {
            if let Some(pos) = ids.iter().position(|&x| x == id) {
                ids.swap_remove(pos);
                break;
            }
        }
    }

    fn take_buf(&mut self) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(READ_BUF, 0);
        buf
    }
}

impl Drop for UringBackend {
    fn drop(&mut self) {
        unsafe { close(self.ring_fd) };
        // Mappings unmap via their own Drop.
    }
}

impl Backend for UringBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::IoUring
    }

    fn register_conn(&mut self, fd: RawFd, token: Token, _interest: Interest) -> io::Result<()> {
        self.conns.insert(fd, token);
        self.conn_ops.entry(fd).or_default();
        Ok(())
    }

    fn register_poll(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.polls.insert(fd, (token, interest, None));
        self.arm_poll(fd, interest);
        Ok(())
    }

    fn set_interest(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if let Some(&(_, _, armed)) = self.polls.get(&fd) {
            self.polls.insert(fd, (token, interest, None));
            if let Some(id) = armed {
                self.cancel_op(id);
            }
            self.arm_poll(fd, interest);
        }
        // Conn fds: interest is op-implied.
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        if self.conns.remove(&fd).is_some() {
            for id in self.conn_ops.remove(&fd).unwrap_or_default() {
                self.cancel_op(id);
            }
        }
        if let Some((_, _, Some(id))) = self.polls.remove(&fd) {
            self.cancel_op(id);
        }
        Ok(())
    }

    fn submit_read(&mut self, fd: RawFd, token: Token) -> Result<(), SubmitError> {
        let buf = self.take_buf();
        let id = self.op_id();
        let addr = buf.as_ptr() as u64;
        let len = buf.len() as u32;
        self.ops.insert(id, OpRec::Read { token, buf });
        let sqe = Sqe {
            opcode: IORING_OP_READ,
            fd,
            addr,
            len,
            user_data: id,
            ..Sqe::default()
        };
        if let Err(e) = self.push_sqe(sqe) {
            if let Some(OpRec::Read { buf, .. }) = self.ops.remove(&id) {
                self.pool.push(buf);
            }
            return Err(e);
        }
        self.conn_ops.entry(fd).or_default().push(id);
        Ok(())
    }

    fn submit_write(&mut self, fd: RawFd, token: Token, data: &[u8]) -> Result<(), SubmitError> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(data);
        let id = self.op_id();
        let addr = buf.as_ptr() as u64;
        let len = buf.len() as u32;
        self.ops.insert(id, OpRec::Write { token, buf });
        let sqe = Sqe {
            opcode: IORING_OP_WRITE,
            fd,
            addr,
            len,
            user_data: id,
            ..Sqe::default()
        };
        if let Err(e) = self.push_sqe(sqe) {
            if let Some(OpRec::Write { buf, .. }) = self.ops.remove(&id) {
                self.pool.push(buf);
            }
            return Err(e);
        }
        self.conn_ops.entry(fd).or_default().push(id);
        Ok(())
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    fn wait(&mut self, out: &mut Vec<Cqe>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = out.len();
        self.flush_deferred();
        // Don't block when completions are already waiting; still enter
        // once to submit anything queued.
        if self.cq_ready() > 0 {
            self.enter(0, None)?;
        } else {
            self.enter(1, timeout)?;
        }
        self.reap(out);
        Ok(out.len() - before)
    }

    fn registered(&self) -> usize {
        self.conns.len() + self.polls.len()
    }
}

unsafe fn atomic_load(p: *const u32) -> u32 {
    (*(p as *const std::sync::atomic::AtomicU32)).load(std::sync::atomic::Ordering::Acquire)
}

unsafe fn atomic_store(p: *mut u32, v: u32) {
    (*(p as *const std::sync::atomic::AtomicU32)).store(v, std::sync::atomic::Ordering::Release)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    /// Every test is gated on the probe: refusing kernels skip, not fail.
    macro_rules! ring_or_skip {
        () => {
            match UringBackend::probe() {
                Some(b) => b,
                None => {
                    eprintln!("io_uring unavailable on this kernel: skipping");
                    return;
                }
            }
        };
    }

    #[test]
    fn probe_is_consistent() {
        // Two probes agree — availability is a property of the kernel,
        // not of probe-order luck.
        assert_eq!(UringBackend::probe().is_some(), UringBackend::probe().is_some());
    }

    #[test]
    fn read_write_round_trip() {
        let mut b = ring_or_skip!();
        let (server_side, mut client) = pair();
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(7), Interest::BOTH).unwrap();
        b.submit_read(fd, Token(7)).unwrap();
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            if !got.is_empty() {
                break;
            }
            b.wait(&mut got, Some(Duration::from_millis(50))).unwrap();
        }
        let Some(Cqe { token, kind: CqeKind::ReadDone { buf, n, err: None } }) = got.pop() else {
            panic!("expected a clean ReadDone: {got:?}");
        };
        assert_eq!(token, Token(7));
        assert_eq!(&buf[..n], b"ping");
        b.recycle(buf);

        b.submit_write(fd, Token(7), b"pong").unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            if !got.is_empty() {
                break;
            }
            b.wait(&mut got, Some(Duration::from_millis(50))).unwrap();
        }
        assert!(
            matches!(got.pop(), Some(Cqe { kind: CqeKind::WriteDone { n: 4, err: None }, .. })),
            "expected WriteDone n=4"
        );
        let mut echo = [0u8; 4];
        std::io::Read::read_exact(&mut client, &mut echo).unwrap();
        assert_eq!(&echo, b"pong");
    }

    #[test]
    fn write_backpressure_completes_on_drain() {
        // A nonblocking socket with a jammed send buffer: the WRITE op must
        // eventually complete (possibly short, possibly after EAGAIN
        // completions the caller resubmits) once the peer drains — the
        // backend half of the write-stall "slides only on progress" story.
        let mut b = ring_or_skip!();
        let (server_side, mut client) = pair();
        server_side.set_nonblocking(true).unwrap();
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(3), Interest::BOTH).unwrap();

        const TOTAL: usize = 512 * 1024;
        let payload: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
        let mut submitted = 0usize; // cursor into payload
        let mut acked = 0usize; // bytes confirmed by WriteDone
        let mut eagains = 0usize;
        let mut inflight = false;

        // Reader thread: drain slowly so the send side jams repeatedly.
        let reader = std::thread::spawn(move || {
            use std::io::Read;
            let mut got = Vec::new();
            let mut chunk = [0u8; 8 * 1024];
            client
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            while got.len() < TOTAL {
                match client.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        got.extend_from_slice(&chunk[..n]);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => panic!("reader: {e}"),
                }
            }
            got
        });

        let t0 = std::time::Instant::now();
        let mut got = Vec::new();
        while acked < TOTAL {
            assert!(
                t0.elapsed() < Duration::from_secs(30),
                "write stalled: acked {acked}/{TOTAL}, {eagains} EAGAINs"
            );
            if !inflight {
                let end = (submitted + 32 * 1024).min(TOTAL);
                b.submit_write(fd, Token(3), &payload[submitted..end]).unwrap();
                inflight = true;
            }
            got.clear();
            b.wait(&mut got, Some(Duration::from_millis(100))).unwrap();
            for cqe in got.drain(..) {
                match cqe.kind {
                    CqeKind::WriteDone { err: Some(e), .. } if e == crate::backend::EAGAIN => {
                        eagains += 1;
                        inflight = false;
                    }
                    CqeKind::WriteDone { n, err: None } => {
                        submitted += n;
                        acked += n;
                        inflight = false;
                    }
                    CqeKind::WriteDone { err: Some(e), .. } => panic!("write errno {e}"),
                    other => panic!("unexpected completion {other:?}"),
                }
            }
        }
        let got = reader.join().unwrap();
        assert_eq!(got.len(), TOTAL);
        assert_eq!(got, payload, "byte stream corrupted under backpressure");
        eprintln!(
            "backpressure: {TOTAL} bytes in {:?}, {eagains} EAGAIN completions",
            t0.elapsed()
        );
    }

    #[test]
    fn poll_add_delivers_and_rearms() {
        let mut b = ring_or_skip!();
        let (server_side, mut client) = pair();
        let fd = server_side.as_raw_fd();
        b.register_poll(fd, Token(42), Interest::READABLE).unwrap();
        for round in 0..2 {
            client.write_all(b"x").unwrap();
            let mut got = Vec::new();
            for _ in 0..100 {
                if !got.is_empty() {
                    break;
                }
                b.wait(&mut got, Some(Duration::from_millis(50))).unwrap();
            }
            assert!(
                matches!(
                    got.first(),
                    Some(Cqe { token: Token(42), kind: CqeKind::Ready { readable: true, .. } })
                ),
                "round {round}: {got:?}"
            );
            // Drain so the re-armed poll reports fresh data only.
            let mut sink = [0u8; 8];
            use std::io::Read;
            let _ = (&server_side).read(&mut sink).unwrap();
        }
    }

    #[test]
    fn wait_times_out_without_events() {
        let mut b = ring_or_skip!();
        let (server_side, _client) = pair();
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(1), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(1)).unwrap();
        let mut got = Vec::new();
        let t0 = std::time::Instant::now();
        let n = b.wait(&mut got, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "silent socket: no completions, got {got:?}");
        assert!(t0.elapsed() >= Duration::from_millis(20), "enter returned too early");
    }

    #[test]
    fn deregister_cancels_and_completions_token_miss() {
        let mut b = ring_or_skip!();
        let (server_side, _client) = pair();
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(5), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(5)).unwrap();
        b.deregister(fd).unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            if !got.is_empty() {
                break;
            }
            b.wait(&mut got, Some(Duration::from_millis(50))).unwrap();
        }
        match got.pop() {
            Some(Cqe { token: Token(5), kind: CqeKind::ReadDone { buf, n: 0, err: Some(_) } }) => {
                b.recycle(buf);
            }
            other => panic!("expected an errno'd ReadDone for the cancelled op: {other:?}"),
        }
        assert_eq!(b.registered(), 0);
    }
}
