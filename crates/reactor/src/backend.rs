//! The pluggable I/O backend abstraction: **readiness** vs **completion**
//! semantics behind one trait, so one event-loop body can drive either.
//!
//! * A *readiness* backend ([`ReadinessBackend`] over epoll/poll) reports
//!   `Ready` events and the caller performs its own non-blocking I/O —
//!   preserving the zero-copy vectored write path.
//! * A *completion* backend (the deterministic mock, or io_uring) owns the
//!   I/O: the caller *submits* reads and writes, the backend performs them
//!   with backend-owned buffers, and `wait` reaps `ReadDone` / `WriteDone`
//!   completions. Submission queues are bounded: `submit_*` can refuse with
//!   [`SubmitError::SqFull`] and the caller retries after the next reap —
//!   backpressure, never a dropped op.
//!
//! The contract both models share (DESIGN.md §16):
//!
//! * **Spurious events.** Readiness backends are level-triggered and may
//!   re-report a condition any number of times. Completion backends may
//!   deliver an `EAGAIN`-flavoured completion (`err == EAGAIN`) that made
//!   no progress; the caller resubmits. Neither model ever *loses* an event.
//! * **Buffer lifetime.** `ReadDone` buffers are backend-owned; the caller
//!   must hand every one back via [`Backend::recycle`] — even when the
//!   completion's token no longer resolves (the connection died while the
//!   op was in flight). `submit_write` *copies* the caller's bytes at
//!   submit time, so the caller's staging buffer is free immediately.
//! * **Ordering.** Completions for different tokens may arrive in any
//!   order; completions for one token's same-direction ops arrive in
//!   submission order (there is at most one read and one write in flight
//!   per token in this codebase, which makes that trivial).
//! * **Half-close / errors.** Readiness backends surface peer half-close as
//!   an `error`-flagged event (`EPOLLRDHUP`, riding only with read
//!   interest). Completion backends surface it as `ReadDone { n: 0 }` —
//!   a clean EOF — and a reset as `err == ECONNRESET` on whichever op was
//!   in flight. There is no false-dead half-close state in the completion
//!   model: a pending write simply completes when the peer drains.
//! * **Teardown.** [`Backend::deregister`] cancels in-flight ops; their
//!   completions may still surface afterwards and must be token-miss
//!   tolerated (and their read buffers recycled) by the caller.

use crate::selector::{Event, Interest, Selector, Token};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Environment variable naming the backend (the CI matrix axis, mirroring
/// `REPRO_ACCEPT_MODE`): `epoll` | `poll` | `mock-completion` | `io_uring`.
pub const BACKEND_ENV: &str = "REPRO_BACKEND";

/// Which I/O backend an event loop runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Readiness via `epoll(7)`: O(ready) — a modern JVM/kernel.
    Epoll,
    /// Readiness via `poll(2)`: O(registered) — the 2004 testbed.
    Poll,
    /// Deterministic completion model over real sockets: seeded completion
    /// ordering, bounded SQ/CQ, short-read/short-write/EAGAIN injection.
    /// The tier-1 stand-in for io_uring semantics.
    MockCompletion,
    /// Real `io_uring` batched submit/reap. Runtime-probed: when the kernel
    /// refuses (ENOSYS, sysctl-disabled, missing features), [`create`]
    /// falls back to epoll readiness.
    IoUring,
}

impl BackendKind {
    /// Read the backend from `REPRO_BACKEND` (case-insensitive). Unset or
    /// unrecognised values fall back to `Epoll`, the paper-faithful default.
    pub fn from_env() -> BackendKind {
        match std::env::var(BACKEND_ENV) {
            Ok(v) => BackendKind::parse(&v).unwrap_or(BackendKind::Epoll),
            Err(_) => BackendKind::Epoll,
        }
    }

    pub fn parse(s: &str) -> Option<BackendKind> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("epoll") {
            Some(BackendKind::Epoll)
        } else if s.eq_ignore_ascii_case("poll") {
            Some(BackendKind::Poll)
        } else if s.eq_ignore_ascii_case("mock-completion") || s.eq_ignore_ascii_case("mock") {
            Some(BackendKind::MockCompletion)
        } else if s.eq_ignore_ascii_case("io_uring")
            || s.eq_ignore_ascii_case("io-uring")
            || s.eq_ignore_ascii_case("uring")
        {
            Some(BackendKind::IoUring)
        } else {
            None
        }
    }

    /// Stable display name (JSON rows, CI logs, `--backend` flags).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
            BackendKind::MockCompletion => "mock-completion",
            BackendKind::IoUring => "io_uring",
        }
    }

    /// Completion-model semantics (submit/reap, backend-owned buffers)?
    pub fn is_completion(&self) -> bool {
        matches!(self, BackendKind::MockCompletion | BackendKind::IoUring)
    }
}

/// What one reaped entry says happened.
#[derive(Debug)]
pub enum CqeKind {
    /// A readiness notification: every event from a readiness backend, and
    /// poll-registered fds (listeners, wakers) on completion backends.
    /// The caller performs the I/O itself.
    Ready {
        readable: bool,
        writable: bool,
        error: bool,
    },
    /// A submitted read finished: `buf[..n]` holds the bytes (`n == 0` is a
    /// clean EOF), unless `err` carries an errno. `buf` is backend-owned —
    /// hand it back via [`Backend::recycle`] in every case, including when
    /// the token no longer resolves.
    ReadDone {
        buf: Vec<u8>,
        n: usize,
        err: Option<i32>,
    },
    /// A submitted write finished: `n` bytes of the submitted copy reached
    /// the socket (possibly short — resubmit the rest), unless `err`.
    WriteDone { n: usize, err: Option<i32> },
}

/// One reaped completion-queue entry.
#[derive(Debug)]
pub struct Cqe {
    pub token: Token,
    pub kind: CqeKind,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full. Nothing was queued; retry the
    /// identical submission after the next [`Backend::wait`] drains it.
    SqFull,
}

/// `EAGAIN` — a completion that made no progress; resubmit.
pub const EAGAIN: i32 = 11;
/// `ECANCELED` — the op was cancelled by `deregister` before it ran.
pub const ECANCELED: i32 = 125;

/// A pluggable I/O backend: readiness or completion semantics behind one
/// vocabulary. See the module docs for the cross-model contract.
pub trait Backend: Send {
    fn kind(&self) -> BackendKind;

    /// Completion-model backend? When true the caller drives connection I/O
    /// through `submit_read`/`submit_write`; when false through its own
    /// non-blocking syscalls on `Ready` events.
    fn is_completion(&self) -> bool {
        self.kind().is_completion()
    }

    /// Register a connection fd. Readiness backends arm the level-triggered
    /// interest set; completion backends only record the fd (interest is
    /// implied by submitted ops).
    fn register_conn(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Register a readiness-only fd (listener, waker). Every backend
    /// delivers `Ready` events for these; completion backends keep the poll
    /// persistently armed across deliveries, so the caller must fully drain
    /// the condition each time (both call sites do).
    fn register_poll(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Change readiness interest. No-op on completion backends for
    /// connection fds.
    fn set_interest(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Remove an fd, cancelling any in-flight completion ops. Their CQEs
    /// may still surface afterwards (token-miss tolerated by the caller).
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Queue a read on a registered connection fd. At most one read in
    /// flight per token.
    fn submit_read(&mut self, fd: RawFd, token: Token) -> Result<(), SubmitError>;

    /// Queue a write of a *copy* of `data` on a registered connection fd.
    /// At most one write in flight per token; `data` is free to reuse the
    /// moment this returns.
    fn submit_write(&mut self, fd: RawFd, token: Token, data: &[u8]) -> Result<(), SubmitError>;

    /// Return a `ReadDone` buffer to the backend's pool.
    fn recycle(&mut self, buf: Vec<u8>);

    /// Submit everything queued and reap completions into `out` (appended).
    /// `None` blocks; completion backends bound the reap by their CQ size —
    /// leftover completions surface on the next call.
    fn wait(&mut self, out: &mut Vec<Cqe>, timeout: Option<Duration>) -> io::Result<usize>;

    /// Registered fds (diagnostics).
    fn registered(&self) -> usize;
}

/// Adapter: any [`Selector`] (epoll, poll) as a readiness-model [`Backend`].
pub struct ReadinessBackend {
    kind: BackendKind,
    selector: Box<dyn Selector>,
    events: Vec<Event>,
}

impl ReadinessBackend {
    pub fn new(kind: BackendKind, selector: Box<dyn Selector>) -> ReadinessBackend {
        ReadinessBackend {
            kind,
            selector,
            events: Vec::new(),
        }
    }
}

impl Backend for ReadinessBackend {
    fn kind(&self) -> BackendKind {
        self.kind
    }

    fn register_conn(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.selector.register(fd, token, interest)
    }

    fn register_poll(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.selector.register(fd, token, interest)
    }

    fn set_interest(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.selector.reregister(fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    fn submit_read(&mut self, _fd: RawFd, _token: Token) -> Result<(), SubmitError> {
        unreachable!("readiness backend has no submission queue")
    }

    fn submit_write(&mut self, _fd: RawFd, _token: Token, _data: &[u8]) -> Result<(), SubmitError> {
        unreachable!("readiness backend has no submission queue")
    }

    fn recycle(&mut self, _buf: Vec<u8>) {}

    fn wait(&mut self, out: &mut Vec<Cqe>, timeout: Option<Duration>) -> io::Result<usize> {
        self.events.clear();
        let n = self.selector.select(&mut self.events, timeout)?;
        for ev in &self.events {
            out.push(Cqe {
                token: ev.token,
                kind: CqeKind::Ready {
                    readable: ev.readable,
                    writable: ev.writable,
                    error: ev.error,
                },
            });
        }
        Ok(n)
    }

    fn registered(&self) -> usize {
        self.selector.registered()
    }
}

/// Build a backend of `kind`. `IoUring` is runtime-probed and falls back to
/// epoll readiness when the kernel refuses — call [`Backend::kind`] on the
/// result to learn what actually runs.
pub fn create(kind: BackendKind) -> Box<dyn Backend> {
    match kind {
        BackendKind::Epoll => Box::new(ReadinessBackend::new(
            BackendKind::Epoll,
            Box::new(crate::EpollSelector::new().expect("epoll")),
        )),
        BackendKind::Poll => Box::new(ReadinessBackend::new(
            BackendKind::Poll,
            Box::new(crate::PollSelector::new()),
        )),
        BackendKind::MockCompletion => Box::new(crate::MockCompletionBackend::default_seeded()),
        BackendKind::IoUring => match crate::UringBackend::probe() {
            Some(b) => Box::new(b),
            None => Box::new(ReadinessBackend::new(
                BackendKind::Epoll,
                Box::new(crate::EpollSelector::new().expect("epoll")),
            )),
        },
    }
}

/// Does this kernel grant a working io_uring? (One probe ring is set up and
/// torn down.) Used by suites that skip-not-fail on refusing kernels.
pub fn io_uring_available() -> bool {
    crate::UringBackend::probe().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            BackendKind::Epoll,
            BackendKind::Poll,
            BackendKind::MockCompletion,
            BackendKind::IoUring,
        ] {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(BackendKind::parse("Mock"), Some(BackendKind::MockCompletion));
        assert_eq!(BackendKind::parse("URING"), Some(BackendKind::IoUring));
        assert_eq!(BackendKind::parse("kqueue"), None);
    }

    #[test]
    fn completion_split() {
        assert!(!BackendKind::Epoll.is_completion());
        assert!(!BackendKind::Poll.is_completion());
        assert!(BackendKind::MockCompletion.is_completion());
        assert!(BackendKind::IoUring.is_completion());
    }

    #[test]
    fn create_falls_back_or_probes() {
        // Whatever the kernel says, `create(IoUring)` must hand back a
        // working backend: the real ring, or epoll readiness.
        let b = create(BackendKind::IoUring);
        assert!(matches!(b.kind(), BackendKind::IoUring | BackendKind::Epoll));
        assert_eq!(b.kind() == BackendKind::IoUring, io_uring_available());
    }
}
