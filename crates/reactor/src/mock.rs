//! The deterministic mock-completion backend: io_uring *semantics* over
//! ordinary sockets, with every source of scheduling freedom scripted by a
//! seed so tier-1 tests can exercise the completion contract (DESIGN.md
//! §16) without a cooperating kernel.
//!
//! What the seed scripts, per [`MockConfig`]:
//!
//! * **Completion order.** All ops executable in one `wait` pass are
//!   shuffled by the seeded RNG before execution, so completions for
//!   different tokens interleave in seed-chosen permutations (the order
//!   contract only pins same-token, same-direction ops).
//! * **Short reads / short writes.** Each executed op moves a seed-chosen
//!   number of bytes, 1..=the configured chunk cap, so a reply crosses the
//!   socket in arbitrary fragments and the caller's partial-write cursor
//!   and re-feed paths run constantly.
//! * **EAGAIN injection.** With configured odds an executable op completes
//!   with `err == EAGAIN` and zero progress instead of doing I/O — the
//!   spurious-completion clause of the contract; the caller must resubmit.
//!
//! Bounded queues: `submit_*` refuses with [`SubmitError::SqFull`] once
//! `sq_capacity` ops are queued ahead of a `wait`, and each `wait` delivers
//! at most `cq_capacity` completions — ops left unexecuted simply stay
//! pending (readiness is level-triggered underneath, so nothing is lost).
//!
//! Underneath sits a private [`EpollSelector`]: an op only executes once
//! its fd reports the matching readiness, which is what makes the mock
//! honest — a read on a silent socket pends exactly like a real completion
//! backend, and a write into a full send buffer parks until the peer
//! drains, letting write-stall deadlines fire upstream.

use crate::backend::{Backend, BackendKind, Cqe, CqeKind, SubmitError, EAGAIN, ECANCELED};
use crate::selector::{EpollSelector, Event, Interest, Selector, Token};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Knobs for the mock's scripted nondeterminism. Every field is
/// deterministic given the seed; two backends built from equal configs
/// execute identical op permutations against identical readiness.
#[derive(Debug, Clone, Copy)]
pub struct MockConfig {
    pub seed: u64,
    /// Ops that may queue between waits before `submit_*` says `SqFull`.
    pub sq_capacity: usize,
    /// Completions delivered per `wait`; surplus executable ops stay
    /// pending for the next pass.
    pub cq_capacity: usize,
    /// Capacity of backend-owned read buffers.
    pub read_buf: usize,
    /// Short-read cap: each executed read moves 1..=this many bytes.
    pub max_read_chunk: usize,
    /// Short-write cap: each executed write moves 1..=this many bytes.
    pub max_write_chunk: usize,
    /// EAGAIN-injection odds: `eagain_num` in `eagain_den` executable ops
    /// complete with no progress. Zero numerator disables injection.
    pub eagain_num: u64,
    pub eagain_den: u64,
}

impl Default for MockConfig {
    fn default() -> MockConfig {
        MockConfig {
            seed: 0x5EED_CAFE,
            sq_capacity: 64,
            cq_capacity: 64,
            read_buf: 64 * 1024,
            max_read_chunk: 64 * 1024,
            max_write_chunk: 32 * 1024,
            eagain_num: 1,
            eagain_den: 16,
        }
    }
}

/// xorshift64* — tiny, seedable, good enough to script permutations; keeps
/// the reactor crate dependency-free.
#[derive(Debug)]
struct ScriptRng(u64);

impl ScriptRng {
    fn new(seed: u64) -> ScriptRng {
        // A zero state would be a fixed point; fold in a constant.
        ScriptRng((seed ^ 0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A queued-but-not-yet-accepted submission.
#[derive(Debug)]
enum SqOp {
    Read { fd: RawFd },
    Write { fd: RawFd, data: Vec<u8> },
}

/// Completion-registered connection fd: pending ops imply interest.
#[derive(Debug)]
struct ConnEntry {
    token: Token,
    read_pending: bool,
    /// The submitted copy, owned until its (single) completion.
    write_pending: Option<Vec<u8>>,
    /// Interest currently armed with the inner selector; `None` when the
    /// fd is not registered there (no pending ops).
    armed: Option<Interest>,
}

/// Readiness-registered fd (listener, waker): persistent passthrough.
#[derive(Debug)]
struct PollEntry {
    token: Token,
    interest: Interest,
}

/// See the module docs. Built via [`MockCompletionBackend::default_seeded`]
/// (the `create()` path) or [`MockCompletionBackend::new`] for tests that
/// pin tiny queues or hostile chunking.
pub struct MockCompletionBackend {
    cfg: MockConfig,
    rng: ScriptRng,
    inner: EpollSelector,
    conns: HashMap<RawFd, ConnEntry>,
    polls: HashMap<RawFd, PollEntry>,
    /// Token → fd for event dispatch (tokens are unique per event loop).
    by_token: HashMap<usize, RawFd>,
    sq: VecDeque<SqOp>,
    /// Cancellation completions minted by `deregister`, delivered ahead of
    /// fresh executions (still under the CQ bound).
    cancelled: VecDeque<Cqe>,
    pool: Vec<Vec<u8>>,
    events: Vec<Event>,
    /// Scratch for the per-wait executable-op permutation.
    exec: Vec<(RawFd, bool, bool)>,
}

impl MockCompletionBackend {
    pub fn new(cfg: MockConfig) -> MockCompletionBackend {
        assert!(cfg.sq_capacity > 0 && cfg.cq_capacity > 0);
        assert!(cfg.read_buf > 0 && cfg.max_read_chunk > 0 && cfg.max_write_chunk > 0);
        MockCompletionBackend {
            rng: ScriptRng::new(cfg.seed),
            cfg,
            inner: EpollSelector::new().expect("epoll for mock-completion backend"),
            conns: HashMap::new(),
            polls: HashMap::new(),
            by_token: HashMap::new(),
            sq: VecDeque::new(),
            cancelled: VecDeque::new(),
            pool: Vec::new(),
            events: Vec::new(),
            exec: Vec::new(),
        }
    }

    /// The `create()` constructor: fixed seed so every worker in a test
    /// process replays the same script.
    pub fn default_seeded() -> MockCompletionBackend {
        MockCompletionBackend::new(MockConfig::default())
    }

    /// Default queues and chunking, custom seed — the permutation proptests.
    pub fn with_seed(seed: u64) -> MockCompletionBackend {
        MockCompletionBackend::new(MockConfig { seed, ..MockConfig::default() })
    }

    fn take_buf(&mut self) -> Vec<u8> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(self.cfg.read_buf, 0);
        buf
    }

    /// Move queued submissions into per-connection pending slots.
    /// Submissions that outlived their fd complete as `ECANCELED`.
    fn drain_sq(&mut self) {
        while let Some(op) = self.sq.pop_front() {
            match op {
                SqOp::Read { fd } => match self.conns.get_mut(&fd) {
                    Some(c) => {
                        debug_assert!(!c.read_pending, "one read in flight per token");
                        c.read_pending = true;
                    }
                    None => self.cancelled.push_back(Cqe {
                        token: Token(usize::MAX),
                        kind: CqeKind::ReadDone { buf: Vec::new(), n: 0, err: Some(ECANCELED) },
                    }),
                },
                SqOp::Write { fd, data } => match self.conns.get_mut(&fd) {
                    Some(c) => {
                        debug_assert!(c.write_pending.is_none(), "one write in flight per token");
                        c.write_pending = Some(data);
                    }
                    None => self.cancelled.push_back(Cqe {
                        token: Token(usize::MAX),
                        kind: CqeKind::WriteDone { n: 0, err: Some(ECANCELED) },
                    }),
                },
            }
        }
    }

    /// Re-arm the inner selector so each conn's interest mirrors its
    /// pending ops (and deregister idle conns — a level-triggered error
    /// condition on an op-less fd must not spin the wait loop).
    fn reconcile_interest(&mut self) -> io::Result<()> {
        for (&fd, c) in &mut self.conns {
            let want = Interest { readable: c.read_pending, writable: c.write_pending.is_some() };
            let idle = !want.readable && !want.writable;
            match (c.armed, idle) {
                (None, true) => {}
                (None, false) => {
                    self.inner.register(fd, c.token, want)?;
                    c.armed = Some(want);
                }
                (Some(_), true) => {
                    self.inner.deregister(fd)?;
                    c.armed = None;
                }
                (Some(cur), false) if cur != want => {
                    self.inner.reregister(fd, c.token, want)?;
                    c.armed = Some(want);
                }
                (Some(_), false) => {}
            }
        }
        Ok(())
    }

    /// Execute one pending read. Exactly one CQE per call.
    fn run_read(&mut self, fd: RawFd, token: Token, out: &mut Vec<Cqe>) {
        let inject = self.cfg.eagain_num > 0
            && self.rng.below(self.cfg.eagain_den) < self.cfg.eagain_num;
        if inject {
            out.push(Cqe {
                token,
                kind: CqeKind::ReadDone { buf: Vec::new(), n: 0, err: Some(EAGAIN) },
            });
            return;
        }
        let mut buf = self.take_buf();
        let cap = buf.len().min(self.cfg.max_read_chunk);
        let limit = 1 + self.rng.below(cap as u64) as usize;
        let kind = loop {
            let n = unsafe { sys_recv(fd, buf.as_mut_ptr(), limit) };
            if n >= 0 {
                break CqeKind::ReadDone { buf, n: n as usize, err: None };
            }
            let errno = io::Error::last_os_error().raw_os_error().unwrap_or(0);
            match errno {
                EINTR => continue,
                // Readiness raced away (or only an error flag was up with
                // nothing buffered): a no-progress completion; resubmit.
                E_AGAIN => break CqeKind::ReadDone { buf, n: 0, err: Some(EAGAIN) },
                e => break CqeKind::ReadDone { buf, n: 0, err: Some(e) },
            }
        };
        out.push(Cqe { token, kind });
    }

    /// Execute one pending write (the submitted copy is consumed either
    /// way — on a short write the caller resubmits the remainder).
    fn run_write(&mut self, fd: RawFd, token: Token, data: Vec<u8>, out: &mut Vec<Cqe>) {
        let inject = self.cfg.eagain_num > 0
            && self.rng.below(self.cfg.eagain_den) < self.cfg.eagain_num;
        if inject {
            out.push(Cqe { token, kind: CqeKind::WriteDone { n: 0, err: Some(EAGAIN) } });
            return;
        }
        let cap = data.len().min(self.cfg.max_write_chunk);
        let limit = 1 + self.rng.below(cap as u64) as usize;
        let kind = loop {
            let n = unsafe { sys_send(fd, data.as_ptr(), limit) };
            if n >= 0 {
                break CqeKind::WriteDone { n: n as usize, err: None };
            }
            let errno = io::Error::last_os_error().raw_os_error().unwrap_or(0);
            match errno {
                EINTR => continue,
                E_AGAIN => break CqeKind::WriteDone { n: 0, err: Some(EAGAIN) },
                e => break CqeKind::WriteDone { n: 0, err: Some(e) },
            }
        };
        out.push(Cqe { token, kind });
    }
}

impl Backend for MockCompletionBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MockCompletion
    }

    fn register_conn(&mut self, fd: RawFd, token: Token, _interest: Interest) -> io::Result<()> {
        // Interest is implied by submitted ops; only record the fd.
        self.conns.insert(
            fd,
            ConnEntry { token, read_pending: false, write_pending: None, armed: None },
        );
        self.by_token.insert(token.0, fd);
        Ok(())
    }

    fn register_poll(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)?;
        self.polls.insert(fd, PollEntry { token, interest });
        self.by_token.insert(token.0, fd);
        Ok(())
    }

    fn set_interest(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if let Some(p) = self.polls.get_mut(&fd) {
            p.interest = interest;
            p.token = token;
            return self.inner.reregister(fd, token, interest);
        }
        // Connection fds: interest is op-implied; nothing to do.
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        if let Some(c) = self.conns.remove(&fd) {
            self.by_token.remove(&c.token.0);
            if c.armed.is_some() {
                self.inner.deregister(fd)?;
            }
            // Cancel in-flight ops: their completions surface as ECANCELED
            // and the caller token-miss tolerates them (the write's copy
            // dies here; a cancelled read never borrowed a buffer).
            if c.read_pending {
                self.cancelled.push_back(Cqe {
                    token: c.token,
                    kind: CqeKind::ReadDone { buf: Vec::new(), n: 0, err: Some(ECANCELED) },
                });
            }
            if c.write_pending.is_some() {
                self.cancelled.push_back(Cqe {
                    token: c.token,
                    kind: CqeKind::WriteDone { n: 0, err: Some(ECANCELED) },
                });
            }
            return Ok(());
        }
        if let Some(p) = self.polls.remove(&fd) {
            self.by_token.remove(&p.token.0);
            return self.inner.deregister(fd);
        }
        Ok(())
    }

    fn submit_read(&mut self, fd: RawFd, _token: Token) -> Result<(), SubmitError> {
        if self.sq.len() >= self.cfg.sq_capacity {
            return Err(SubmitError::SqFull);
        }
        self.sq.push_back(SqOp::Read { fd });
        Ok(())
    }

    fn submit_write(&mut self, fd: RawFd, _token: Token, data: &[u8]) -> Result<(), SubmitError> {
        if self.sq.len() >= self.cfg.sq_capacity {
            return Err(SubmitError::SqFull);
        }
        self.sq.push_back(SqOp::Write { fd, data: data.to_vec() });
        Ok(())
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    fn wait(&mut self, out: &mut Vec<Cqe>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = out.len();
        self.drain_sq();
        self.reconcile_interest()?;

        // Cancellations first — bounded by the CQ like everything else.
        let mut budget = self.cfg.cq_capacity;
        while budget > 0 {
            match self.cancelled.pop_front() {
                Some(c) => {
                    out.push(c);
                    budget -= 1;
                }
                None => break,
            }
        }
        // With completions already delivered, poll readiness without
        // blocking so the caller gets back to work.
        let tmo = if out.len() > before { Some(Duration::ZERO) } else { timeout };
        self.events.clear();
        self.inner.select(&mut self.events, tmo)?;

        // Passthrough fds deliver `Ready` directly (level-triggered — a
        // condition the caller leaves undrained simply re-reports, so the
        // CQ bound does not apply). Conn fds queue for scripted execution.
        self.exec.clear();
        for i in 0..self.events.len() {
            let ev = self.events[i];
            let Some(&fd) = self.by_token.get(&ev.token.0) else { continue };
            if self.polls.contains_key(&fd) {
                out.push(Cqe {
                    token: ev.token,
                    kind: CqeKind::Ready {
                        readable: ev.readable,
                        writable: ev.writable,
                        error: ev.error,
                    },
                });
            } else if self.conns.contains_key(&fd) {
                // Error-flagged events unblock both directions: the op
                // runs and observes EOF/ECONNRESET/EPIPE itself.
                self.exec.push((fd, ev.readable || ev.error, ev.writable || ev.error));
            }
        }
        // Canonical order, then the seeded permutation: completion order
        // across tokens is scripted, not epoll's.
        self.exec.sort_unstable();
        let mut exec = std::mem::take(&mut self.exec);
        for i in (1..exec.len()).rev() {
            exec.swap(i, self.rng.below(i as u64 + 1) as usize);
        }
        for &(fd, r, w) in &exec {
            let Some(c) = self.conns.get_mut(&fd) else { continue };
            let token = c.token;
            let run_read = r && c.read_pending;
            let run_write = w && c.write_pending.is_some();
            if run_read && budget > 0 {
                c.read_pending = false;
                self.run_read(fd, token, out);
                budget -= 1;
            }
            if run_write && budget > 0 {
                // Re-borrow: run_read released the map borrow.
                if let Some(c) = self.conns.get_mut(&fd) {
                    if let Some(data) = c.write_pending.take() {
                        self.run_write(fd, token, data, out);
                        budget -= 1;
                    }
                }
            }
        }
        self.exec = exec;
        Ok(out.len() - before)
    }

    fn registered(&self) -> usize {
        self.conns.len() + self.polls.len()
    }
}

const EINTR: i32 = 4;
const E_AGAIN: i32 = 11;
const MSG_NOSIGNAL: i32 = 0x4000;

/// `recv(2)`/`send(2)` on raw fds — `MSG_NOSIGNAL` so a write into a
/// reset connection reports `EPIPE` instead of raising `SIGPIPE` (std's
/// `TcpStream` does the same; the mock operates below it).
unsafe fn sys_recv(fd: RawFd, buf: *mut u8, len: usize) -> isize {
    extern "C" {
        fn recv(fd: i32, buf: *mut std::os::raw::c_void, len: usize, flags: i32) -> isize;
    }
    recv(fd, buf as *mut _, len, 0)
}

unsafe fn sys_send(fd: RawFd, buf: *const u8, len: usize) -> isize {
    extern "C" {
        fn send(fd: i32, buf: *const std::os::raw::c_void, len: usize, flags: i32) -> isize;
    }
    send(fd, buf as *const _, len, MSG_NOSIGNAL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn no_eagain() -> MockConfig {
        MockConfig { eagain_num: 0, ..MockConfig::default() }
    }

    /// Drive `wait` until `pred` says the collected completions suffice.
    fn wait_until(
        b: &mut MockCompletionBackend,
        got: &mut Vec<Cqe>,
        pred: impl Fn(&[Cqe]) -> bool,
    ) {
        for _ in 0..1000 {
            if pred(got) {
                return;
            }
            b.wait(got, Some(Duration::from_millis(50))).unwrap();
        }
        panic!("mock backend made no progress: {got:?}");
    }

    #[test]
    fn read_completes_with_submitted_bytes() {
        let (server_side, mut client) = pair();
        let mut b = MockCompletionBackend::new(no_eagain());
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(7), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(7)).unwrap();
        client.write_all(b"hello").unwrap();
        let mut got = Vec::new();
        wait_until(&mut b, &mut got, |g| {
            g.iter().any(|c| matches!(c.kind, CqeKind::ReadDone { n, .. } if n > 0))
        });
        let mut data = Vec::new();
        for c in got {
            assert_eq!(c.token, Token(7));
            if let CqeKind::ReadDone { buf, n, err } = c.kind {
                assert_eq!(err, None);
                data.extend_from_slice(&buf[..n]);
                b.recycle(buf);
            }
        }
        assert_eq!(&data, b"hello");
    }

    #[test]
    fn eof_is_a_zero_byte_clean_completion() {
        let (server_side, client) = pair();
        let mut b = MockCompletionBackend::new(no_eagain());
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(1), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(1)).unwrap();
        drop(client);
        let mut got = Vec::new();
        wait_until(&mut b, &mut got, |g| !g.is_empty());
        match &got[0].kind {
            CqeKind::ReadDone { n, err, .. } => {
                assert_eq!((*n, *err), (0, None), "FIN must be a clean EOF completion");
            }
            other => panic!("expected ReadDone, got {other:?}"),
        }
    }

    #[test]
    fn short_writes_deliver_every_byte_in_order() {
        let (server_side, mut client) = pair();
        client.set_nonblocking(false).unwrap();
        let mut b = MockCompletionBackend::new(MockConfig {
            max_write_chunk: 3,
            ..no_eagain()
        });
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(9), Interest::WRITABLE).unwrap();
        let payload = b"the quick brown fox jumps over the lazy dog";
        let mut sent = 0usize;
        let mut got = Vec::new();
        while sent < payload.len() {
            b.submit_write(fd, Token(9), &payload[sent..]).unwrap();
            let before = got.len();
            wait_until(&mut b, &mut got, |g| g.len() > before);
            for c in got.drain(..) {
                match c.kind {
                    CqeKind::WriteDone { n, err: None } => {
                        assert!(n <= 3, "short-write cap violated: {n}");
                        sent += n;
                    }
                    CqeKind::WriteDone { err: Some(e), .. } => panic!("write errno {e}"),
                    other => panic!("unexpected completion {other:?}"),
                }
            }
        }
        let mut echo = vec![0u8; payload.len()];
        std::io::Read::read_exact(&mut client, &mut echo).unwrap();
        assert_eq!(&echo, payload);
    }

    #[test]
    fn eagain_injection_makes_no_progress_and_resubmission_succeeds() {
        let (server_side, mut client) = pair();
        // Always inject: the first completion of every op is EAGAIN.
        let mut b = MockCompletionBackend::new(MockConfig {
            eagain_num: 1,
            eagain_den: 1,
            ..MockConfig::default()
        });
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(3), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(3)).unwrap();
        client.write_all(b"x").unwrap();
        let mut got = Vec::new();
        wait_until(&mut b, &mut got, |g| !g.is_empty());
        match &got[0].kind {
            CqeKind::ReadDone { n, err, .. } => assert_eq!((*n, *err), (0, Some(EAGAIN))),
            other => panic!("expected ReadDone, got {other:?}"),
        }
        // The byte is still there for the resubmission once injection is
        // turned back off.
        b.cfg.eagain_num = 0;
        got.clear();
        b.submit_read(fd, Token(3)).unwrap();
        wait_until(&mut b, &mut got, |g| {
            g.iter().any(|c| matches!(c.kind, CqeKind::ReadDone { n, .. } if n == 1))
        });
    }

    #[test]
    fn sq_refuses_above_capacity_and_drains_on_wait() {
        let (server_side, _client) = pair();
        let mut b = MockCompletionBackend::new(MockConfig {
            sq_capacity: 2,
            ..no_eagain()
        });
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(1), Interest::BOTH).unwrap();
        b.submit_write(fd, Token(1), b"a").unwrap();
        b.submit_read(fd, Token(1)).unwrap();
        assert_eq!(b.submit_read(fd, Token(1)), Err(SubmitError::SqFull));
        let mut got = Vec::new();
        b.wait(&mut got, Some(Duration::from_millis(20))).unwrap();
        // Queue drained into pending slots: submissions are accepted again
        // (for a token with nothing in flight).
        let (other, _keep) = pair();
        b.register_conn(other.as_raw_fd(), Token(2), Interest::BOTH).unwrap();
        assert_eq!(b.submit_read(other.as_raw_fd(), Token(2)), Ok(()));
    }

    fn count_cancels(got: &[Cqe]) -> usize {
        got.iter()
            .filter(|c| match &c.kind {
                CqeKind::ReadDone { err, .. } => *err == Some(ECANCELED),
                CqeKind::WriteDone { err, .. } => *err == Some(ECANCELED),
                CqeKind::Ready { .. } => false,
            })
            .count()
    }

    #[test]
    fn deregister_cancels_pending_ops() {
        // A read parked on a silent socket (already accepted into its
        // pending slot) cancels at deregister, tagged with its token.
        let (server_side, _client) = pair();
        let mut b = MockCompletionBackend::new(no_eagain());
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(5), Interest::READABLE).unwrap();
        b.submit_read(fd, Token(5)).unwrap();
        let mut got = Vec::new();
        b.wait(&mut got, Some(Duration::ZERO)).unwrap();
        assert!(got.is_empty(), "nothing to read yet: {got:?}");
        b.deregister(fd).unwrap();
        assert_eq!(b.registered(), 0);
        b.wait(&mut got, Some(Duration::ZERO)).unwrap();
        assert_eq!(count_cancels(&got), 1, "{got:?}");
        assert_eq!(got[0].token, Token(5));
    }

    #[test]
    fn deregister_cancels_ops_still_queued_in_the_sq() {
        // Ops that never left the submission queue before the fd died
        // still complete — as ECANCELED token-misses, never silently.
        let (server_side, _client) = pair();
        let mut b = MockCompletionBackend::new(no_eagain());
        let fd = server_side.as_raw_fd();
        b.register_conn(fd, Token(6), Interest::BOTH).unwrap();
        b.submit_read(fd, Token(6)).unwrap();
        b.submit_write(fd, Token(6), b"bye").unwrap();
        b.deregister(fd).unwrap();
        let mut got = Vec::new();
        b.wait(&mut got, Some(Duration::ZERO)).unwrap();
        assert_eq!(count_cancels(&got), 2, "{got:?}");
    }

    #[test]
    fn poll_registrations_pass_readiness_through() {
        let (server_side, mut client) = pair();
        let mut b = MockCompletionBackend::new(no_eagain());
        let fd = server_side.as_raw_fd();
        b.register_poll(fd, Token(42), Interest::READABLE).unwrap();
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        wait_until(&mut b, &mut got, |g| !g.is_empty());
        assert_eq!(got[0].token, Token(42));
        assert!(matches!(got[0].kind, CqeKind::Ready { readable: true, .. }));
    }

    #[test]
    fn cq_bound_defers_surplus_completions() {
        // Four conns with readable data, CQ of one: each wait delivers
        // exactly one completion and the rest stay pending, never lost.
        let pairs: Vec<_> = (0..4).map(|_| pair()).collect();
        let mut b = MockCompletionBackend::new(MockConfig {
            cq_capacity: 1,
            ..no_eagain()
        });
        for (i, (server_side, _)) in pairs.iter().enumerate() {
            let fd = server_side.as_raw_fd();
            b.register_conn(fd, Token(i + 1), Interest::READABLE).unwrap();
            b.submit_read(fd, Token(i + 1)).unwrap();
        }
        for (_, client) in &pairs {
            let mut c = client;
            c.write_all(b"z").unwrap();
        }
        let mut seen = Vec::new();
        for _ in 0..4 {
            let mut got = Vec::new();
            wait_until(&mut b, &mut got, |g| !g.is_empty());
            assert_eq!(got.len(), 1, "CQ bound of one: {got:?}");
            seen.push(got[0].token);
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 4, "every conn's read completed exactly once");
    }
}
