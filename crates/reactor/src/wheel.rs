//! Wall-clock hierarchical deadline wheel for per-connection timers.
//!
//! Same shape as the sim-side `desim::wheel::TimerWheel` (Varghese & Lauck
//! hierarchy: a fine wheel of `SLOTS` buckets, then coarser wheels each
//! `SLOTS`× wider, cascading on slot boundaries) so lifecycle policies are
//! expressible identically in both layers. The differences are driven by the
//! live servers' needs:
//!
//! - Time is `u64` nanoseconds since a caller-chosen epoch (the worker's
//!   start `Instant`), not virtual `SimTime`.
//! - The pop is *bounded*: [`DeadlineWheel::pop_due`] only yields entries
//!   whose deadline is at or before `now`, so a worker loop can harvest
//!   expiries once per select tick without a global peek.
//! - There is no remove. Cancellation is lazy: callers key entries with a
//!   generation counter and drop stale pops (an event-driven server re-arms
//!   deadlines on every readiness event; eager removal would make the hot
//!   path pay for the cold one).
//!
//! Default resolution is 1 ms — connection deadlines are 100 ms..minutes, so
//! a coarser base slot keeps cascades rare while staying far below the
//! shortest policy anyone configures.

use std::collections::VecDeque;

const SLOTS: usize = 64;
const LEVELS: usize = 8;

#[derive(Debug)]
struct Entry<K> {
    at: u64,
    seq: u64,
    key: K,
}

/// A hierarchical deadline wheel over `u64` nanoseconds.
///
/// `resolution` is the width of a level-0 slot; level `k` slots are
/// `resolution × SLOTS^k` wide. Entries beyond the hierarchy land in an
/// overflow list consulted on cascade, so arbitrarily far deadlines are
/// never lost.
#[derive(Debug)]
pub struct DeadlineWheel<K> {
    resolution: u64,
    /// wheels[level][slot]
    wheels: Vec<Vec<VecDeque<Entry<K>>>>,
    /// Absolute time the cursor has processed up to (exclusive).
    horizon: u64,
    len: usize,
    /// Entries too far out for the hierarchy (rare).
    overflow: Vec<Entry<K>>,
    next_seq: u64,
}

impl<K> DeadlineWheel<K> {
    /// Wheel with 1 ms base resolution.
    pub fn new() -> Self {
        Self::with_resolution(1_000_000)
    }

    /// Wheel with an explicit base slot width (nanoseconds).
    pub fn with_resolution(resolution: u64) -> Self {
        assert!(resolution > 0);
        DeadlineWheel {
            resolution,
            wheels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            horizon: 0,
            len: 0,
            overflow: Vec::new(),
            next_seq: 0,
        }
    }

    /// Width of one slot at `level`.
    fn slot_width(&self, level: usize) -> u64 {
        self.resolution
            .saturating_mul((SLOTS as u64).saturating_pow(level as u32))
    }

    /// Span of the whole wheel at `level` (slot width × SLOTS).
    fn level_span(&self, level: usize) -> u64 {
        self.slot_width(level).saturating_mul(SLOTS as u64)
    }

    /// Arm a deadline at absolute time `at` (nanoseconds since the wheel's
    /// epoch). Deadlines already in the past are clamped to the horizon and
    /// fire on the next harvest.
    pub fn schedule(&mut self, at: u64, key: K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        // Unlike the sim wheel, live callers may arm a deadline that has
        // already elapsed (timeout shorter than one select tick); clamp
        // instead of asserting so it pops immediately.
        let at = at.max(self.horizon);
        self.place(Entry { at, seq, key });
    }

    /// Place an entry into the correct wheel/slot relative to the horizon.
    fn place(&mut self, entry: Entry<K>) {
        let delta = entry.at.saturating_sub(self.horizon);
        for level in 0..LEVELS {
            if delta < self.level_span(level) {
                let slot = ((entry.at / self.slot_width(level)) % SLOTS as u64) as usize;
                self.wheels[level][slot].push_back(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Advance the horizon one level-0 slot, cascading coarser buckets as
    /// their boundaries are crossed.
    fn advance_one_slot(&mut self) {
        self.horizon += self.resolution;
        for level in 1..LEVELS {
            if self.horizon.is_multiple_of(self.slot_width(level)) {
                let slot = ((self.horizon / self.slot_width(level)) % SLOTS as u64) as usize;
                let mut bucket: Vec<Entry<K>> = self.wheels[level][slot].drain(..).collect();
                for entry in bucket.drain(..) {
                    // Redistribute into finer wheels; entries a full lap out
                    // stay at this level.
                    let delta = entry.at.saturating_sub(self.horizon);
                    let target = (0..level).find(|&l| delta < self.level_span(l));
                    match target {
                        Some(l) => {
                            let s = ((entry.at / self.slot_width(l)) % SLOTS as u64) as usize;
                            self.wheels[l][s].push_back(entry);
                        }
                        None => self.wheels[level][slot].push_back(entry),
                    }
                }
            } else {
                break;
            }
        }
        if !self.overflow.is_empty() {
            let top_span = self.level_span(LEVELS - 1);
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].at.saturating_sub(self.horizon) < top_span {
                    let e = self.overflow.swap_remove(i);
                    self.place(e);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Drain the current level-0 slot sorted by (deadline, seq).
    fn take_current_slot(&mut self) -> Vec<Entry<K>> {
        let slot = ((self.horizon / self.resolution) % SLOTS as u64) as usize;
        let mut out: Vec<Entry<K>> = self.wheels[0][slot].drain(..).collect();
        out.sort_by(|a, b| a.at.cmp(&b.at).then(a.seq.cmp(&b.seq)));
        out
    }

    /// Pop the earliest deadline at or before `now`, advancing the cursor as
    /// far as `now` permits. Returns `(deadline, key)`. Call in a loop each
    /// tick to harvest every expiry; entries after `now` stay armed.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, K)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let mut slot = self.take_current_slot();
            if !slot.is_empty() {
                if slot[0].at <= now {
                    let head = slot.remove(0);
                    let slot_idx = ((self.horizon / self.resolution) % SLOTS as u64) as usize;
                    for e in slot.into_iter().rev() {
                        self.wheels[0][slot_idx].push_front(e);
                    }
                    self.len -= 1;
                    return Some((head.at, head.key));
                }
                // Earliest entry in the cursor slot is in the future; put
                // everything back and stop — nothing is due.
                let slot_idx = ((self.horizon / self.resolution) % SLOTS as u64) as usize;
                for e in slot.into_iter().rev() {
                    self.wheels[0][slot_idx].push_front(e);
                }
                return None;
            }
            if self.horizon.saturating_add(self.resolution) > now {
                return None;
            }
            self.advance_one_slot();
        }
    }

    /// Earliest armed deadline, or `None` when empty. Full scan — the wheel
    /// has no cheap global min; use for idle-timeout sizing of a select
    /// wait, not per-event.
    pub fn peek_next(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for level in &self.wheels {
            for bucket in level {
                for e in bucket {
                    if best.is_none_or(|b| e.at < b) {
                        best = Some(e.at);
                    }
                }
            }
        }
        for e in &self.overflow {
            if best.is_none_or(|b| e.at < b) {
                best = Some(e.at);
            }
        }
        best
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K> Default for DeadlineWheel<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until<K: Copy>(w: &mut DeadlineWheel<K>, now: u64) -> Vec<(u64, K)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop_due(now) {
            out.push(e);
        }
        out
    }

    #[test]
    fn orders_by_deadline_then_arm_order() {
        let mut w = DeadlineWheel::with_resolution(10);
        w.schedule(500, 'a');
        w.schedule(30, 'b');
        w.schedule(500, 'c');
        w.schedule(0, 'd');
        assert_eq!(
            drain_until(&mut w, 1_000),
            vec![(0, 'd'), (30, 'b'), (500, 'a'), (500, 'c')]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = DeadlineWheel::with_resolution(10);
        w.schedule(100, 1u32);
        w.schedule(5_000, 2u32);
        assert_eq!(w.pop_due(99), None);
        assert_eq!(w.pop_due(100), Some((100, 1)));
        assert_eq!(w.pop_due(4_999), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(5_000), Some((5_000, 2)));
        assert_eq!(w.pop_due(u64::MAX), None);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = DeadlineWheel::with_resolution(10);
        // Level-0 span = 640 ns; these land in level 1+.
        w.schedule(10_000, 0u8);
        w.schedule(700, 1u8);
        w.schedule(50_000, 2u8);
        w.schedule(5, 3u8);
        assert_eq!(
            drain_until(&mut w, u64::MAX / 2),
            vec![(5, 3), (700, 1), (10_000, 0), (50_000, 2)]
        );
    }

    #[test]
    fn far_future_overflow_entries_survive() {
        let mut w = DeadlineWheel::with_resolution(1);
        w.schedule(1, 0u8);
        w.schedule(u64::MAX / 2, 1u8);
        assert_eq!(w.pop_due(10), Some((1, 0)));
        assert_eq!(w.len(), 1);
        assert_eq!(w.peek_next(), Some(u64::MAX / 2));
    }

    #[test]
    fn past_deadlines_clamp_and_fire_immediately() {
        let mut w = DeadlineWheel::with_resolution(10);
        // Move the cursor well past zero first.
        w.schedule(1_000, 0u8);
        assert_eq!(w.pop_due(2_000), Some((1_000, 0)));
        // Arm "in the past" relative to the cursor: clamps, still fires.
        w.schedule(3, 1u8);
        let popped = w.pop_due(2_000);
        assert_eq!(popped.map(|(_, k)| k), Some(1));
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop_monotone() {
        // Deterministic LCG so the test needs no rng dependency.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move |below: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % below
        };
        let mut w = DeadlineWheel::with_resolution(50);
        let mut last = 0u64;
        let mut pending = 0usize;
        for i in 0..3_000u64 {
            if pending == 0 || rand(10) < 6 {
                let t = last + rand(100_000);
                w.schedule(t, i);
                pending += 1;
            } else {
                let (t, _) = w.pop_due(u64::MAX / 2).expect("pending entries must pop");
                assert!(t >= last, "time went backwards");
                last = t;
                pending -= 1;
            }
            assert_eq!(w.len(), pending);
        }
    }

    /// The lazy-cancellation idiom every live server builds on this wheel
    /// (see nioserver's write-stall deadline): a *slide* re-arms by
    /// scheduling a fresh `(key, generation+1)` entry and leaving the stale
    /// one in place; the harvest drops pops whose generation no longer
    /// matches. Progress before the old deadline must therefore never fire
    /// the timeout — only the slid deadline can.
    #[test]
    fn generation_rearm_slides_expiry_only_forward() {
        let mut w: DeadlineWheel<(u32, u64)> = DeadlineWheel::with_resolution(10);
        let conn = 7u32;
        let mut gen = 0u64;
        // Armed at t=1_000; progress at t=400 slides it to t=1_400, then
        // progress at t=900 slides it to t=1_900.
        w.schedule(1_000, (conn, gen));
        for slide_to in [1_400u64, 1_900] {
            gen += 1;
            w.schedule(slide_to, (conn, gen));
        }
        let mut fired = Vec::new();
        for now in [999u64, 1_000, 1_399, 1_400, 1_899, 1_900] {
            while let Some((at, (id, g))) = w.pop_due(now) {
                assert_eq!(id, conn);
                if g == gen {
                    fired.push((now, at));
                } // else: stale generation, dropped — the lazy cancel
            }
        }
        // Both superseded deadlines popped silently; the connection timed
        // out exactly once, at the final slid deadline.
        assert_eq!(fired, vec![(1_900, 1_900)]);
        assert!(w.is_empty());
    }

    /// A slide storm (one entry per progress event, as a busy connection
    /// produces) leaves the wheel consistent: `len` counts every armed
    /// entry including stale ones, all of them pop by the final deadline,
    /// and exactly one carries the live generation.
    #[test]
    fn rearm_storm_drains_completely_with_one_live_entry() {
        let mut w: DeadlineWheel<u64> = DeadlineWheel::with_resolution(50);
        let slides = 500u64;
        for g in 0..=slides {
            // Each slide pushes the deadline further out, crossing slot and
            // level boundaries along the way.
            w.schedule(1_000 + g * 777, g);
        }
        assert_eq!(w.len(), slides as usize + 1);
        let mut live_pops = 0;
        let mut last_at = 0;
        while let Some((at, g)) = w.pop_due(u64::MAX / 2) {
            assert!(at >= last_at, "expiry order must be monotone");
            last_at = at;
            if g == slides {
                live_pops += 1;
                assert_eq!(at, 1_000 + slides * 777);
            }
        }
        assert_eq!(live_pops, 1, "exactly one live-generation expiry");
        assert!(w.is_empty());
    }

    /// `peek_next` (which sizes the worker's select timeout) sees stale
    /// entries too — waking early for a superseded deadline is harmless
    /// (the pop is dropped), but waking *late* for a live one would stall
    /// the timeout path, so the peek must never exceed the earliest armed
    /// entry, stale or not.
    #[test]
    fn peek_next_is_conservative_across_rearms() {
        let mut w: DeadlineWheel<(u8, u64)> = DeadlineWheel::with_resolution(10);
        w.schedule(500, (1, 0));
        w.schedule(900, (1, 1)); // slide
        assert_eq!(w.peek_next(), Some(500), "stale entry still bounds the wait");
        assert_eq!(w.pop_due(600), Some((500, (1, 0)))); // dropped by caller
        assert_eq!(w.peek_next(), Some(900), "live entry remains");
    }

    #[test]
    fn empty_wheel() {
        let mut w: DeadlineWheel<u8> = DeadlineWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.pop_due(u64::MAX), None);
        assert_eq!(w.peek_next(), None);
    }
}
