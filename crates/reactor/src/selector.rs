//! Readiness selection: the `Selector` abstraction plus the epoll and
//! poll(2) backends.
//!
//! Both backends are **level-triggered**, matching Java NIO's `select()`
//! semantics that the paper's server is written against: a key stays ready
//! until the condition is drained, so a server that processes only part of
//! the readable data simply sees the key again on the next select.

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// What the caller wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Error or hang-up. On the epoll backend this includes `EPOLLRDHUP`,
    /// which only means "the peer sends no more" (a half-close), **not**
    /// "the connection is dead": a half-closed connection may still owe
    /// replies and must keep flushing. Callers must drain readable data
    /// and pending output before treating this as fatal.
    pub error: bool,
}

/// A readiness selector over raw fds.
pub trait Selector: Send {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Wait for events, appending into `out`. `None` timeout blocks.
    fn select(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
    /// Number of registered fds (for diagnostics).
    fn registered(&self) -> usize;
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round *up*: `as_millis()` truncates, which would turn a
        // sub-millisecond wait (e.g. 100 µs) into a 0 ms timeout — a
        // busy-spin poll instead of a blocking wait.
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

// ---------------------------------------------------------------------
// epoll backend
// ---------------------------------------------------------------------

/// O(ready) selection via `epoll(7)` (level-triggered).
pub struct EpollSelector {
    epfd: RawFd,
    registered: usize,
    buf: Vec<sys::EpollEvent>,
}

impl EpollSelector {
    pub fn new() -> io::Result<Self> {
        let epfd = sys::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(EpollSelector {
            epfd,
            registered: 0,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        // EPOLLRDHUP rides along only with read interest. It is permanently
        // asserted once the peer half-closes, so subscribing it on a
        // write-only registration (a connection that is done reading and
        // only flushing owed replies) would re-report the fd on every
        // wait — and, with a full send buffer, deliver error-only events
        // that look fatal while bytes are still owed.
        let mut flags = 0;
        if interest.readable {
            flags |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.writable {
            flags |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events: flags,
            data: token.0 as u64,
        };
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }
}

impl Selector for EpollSelector {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)?;
        self.registered += 1;
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        sys::cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
        self.registered = self.registered.saturating_sub(1);
        Ok(())
    }

    fn select(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let n = loop {
            let r = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if r < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            break r as usize;
        };
        for ev in &self.buf[..n] {
            let flags = ev.events;
            out.push(Event {
                token: Token(ev.data as usize),
                readable: flags & sys::EPOLLIN != 0,
                writable: flags & sys::EPOLLOUT != 0,
                error: flags & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        if n == self.buf.len() {
            // Saturated: grow so a flood doesn't starve late registrations.
            self.buf
                .resize(self.buf.len() * 2, sys::EpollEvent { events: 0, data: 0 });
        }
        Ok(n)
    }

    fn registered(&self) -> usize {
        self.registered
    }
}

impl Drop for EpollSelector {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// Safety: the epoll fd is just an integer handle; all mutation goes through
// &mut self.
unsafe impl Send for EpollSelector {}

// ---------------------------------------------------------------------
// poll(2) backend
// ---------------------------------------------------------------------

/// O(registered) selection via `poll(2)` — the behaviour of 2004-era Java
/// `Selector.select()`. Kept for the selector-cost ablation.
#[derive(Debug, Default)]
pub struct PollSelector {
    fds: Vec<sys::PollFd>,
    tokens: Vec<Token>,
}

impl PollSelector {
    pub fn new() -> Self {
        PollSelector::default()
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn events_for(interest: Interest) -> i16 {
        let mut e = 0;
        if interest.readable {
            e |= sys::POLLIN;
        }
        if interest.writable {
            e |= sys::POLLOUT;
        }
        e
    }
}

impl Selector for PollSelector {
    fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(sys::PollFd {
            fd,
            events: Self::events_for(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = Self::events_for(interest);
        self.tokens[i] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn select(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let n = loop {
            let r = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if r < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            break r as usize;
        };
        // The O(registered) scan the paper's JVM paid on every select.
        for (p, &tok) in self.fds.iter().zip(&self.tokens) {
            if p.revents != 0 {
                out.push(Event {
                    token: tok,
                    readable: p.revents & sys::POLLIN != 0,
                    writable: p.revents & sys::POLLOUT != 0,
                    error: p.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                });
            }
        }
        Ok(n)
    }

    fn registered(&self) -> usize {
        self.fds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Box<dyn Selector>> {
        vec![
            Box::new(EpollSelector::new().expect("epoll")),
            Box::new(PollSelector::new()),
        ]
    }

    #[test]
    fn empty_select_times_out_quickly() {
        for mut s in backends() {
            let mut out = Vec::new();
            let n = s
                .select(&mut out, Some(Duration::from_millis(5)))
                .expect("select");
            assert_eq!(n, 0);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn submillisecond_timeout_blocks_instead_of_spinning() {
        // Regression: `as_millis()` truncation turned a 100 µs timeout into
        // a 0 ms poll, so an idle select degenerated to a busy spin. The
        // timeout must round up and actually block.
        for mut s in backends() {
            let start = std::time::Instant::now();
            let mut out = Vec::new();
            for _ in 0..20 {
                let n = s
                    .select(&mut out, Some(Duration::from_micros(100)))
                    .expect("select");
                assert_eq!(n, 0);
            }
            // Rounded up to 1 ms each, 20 idle selects must take ≥ ~20 ms;
            // the truncated-to-zero spin finished in microseconds.
            assert!(
                start.elapsed() >= Duration::from_millis(10),
                "20 sub-millisecond selects returned in {:?} — busy spin",
                start.elapsed()
            );
        }
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for mut s in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).unwrap();
            s.register(listener.as_raw_fd(), Token(7), Interest::READABLE)
                .unwrap();
            assert_eq!(s.registered(), 1);
            let _client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
            let mut out = Vec::new();
            // Allow a few millis for loopback delivery.
            let n = s.select(&mut out, Some(Duration::from_millis(500))).unwrap();
            assert_eq!(n, 1, "listener should be readable");
            assert_eq!(out[0].token, Token(7));
            assert!(out[0].readable);
        }
    }

    #[test]
    fn stream_readable_after_peer_writes() {
        for mut s in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();
            s.register(server_side.as_raw_fd(), Token(1), Interest::READABLE)
                .unwrap();
            let mut out = Vec::new();
            let n = s.select(&mut out, Some(Duration::from_millis(20))).unwrap();
            assert_eq!(n, 0, "no data yet");
            client.write_all(b"ping").unwrap();
            let n = s.select(&mut out, Some(Duration::from_millis(500))).unwrap();
            assert_eq!(n, 1);
            assert!(out[0].readable);
            s.deregister(server_side.as_raw_fd()).unwrap();
            assert_eq!(s.registered(), 0);
        }
    }

    #[test]
    fn writable_interest_fires_immediately_on_fresh_socket() {
        for mut s in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            s.register(client.as_raw_fd(), Token(3), Interest::BOTH)
                .unwrap();
            let mut out = Vec::new();
            s.select(&mut out, Some(Duration::from_millis(500))).unwrap();
            assert!(out.iter().any(|e| e.token == Token(3) && e.writable));
        }
    }

    #[test]
    fn reregister_switches_interest() {
        for mut s in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            s.register(client.as_raw_fd(), Token(4), Interest::WRITABLE)
                .unwrap();
            let mut out = Vec::new();
            s.select(&mut out, Some(Duration::from_millis(200))).unwrap();
            assert!(!out.is_empty(), "fresh socket is writable");
            // Switch to read-only interest: no data pending ⇒ silent.
            s.reregister(client.as_raw_fd(), Token(4), Interest::READABLE)
                .unwrap();
            out.clear();
            let n = s.select(&mut out, Some(Duration::from_millis(20))).unwrap();
            assert_eq!(n, 0, "read interest with no data must be quiet");
        }
    }

    #[test]
    fn poll_register_twice_rejected() {
        let mut s = PollSelector::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        s.register(fd, Token(0), Interest::READABLE).unwrap();
        assert!(s.register(fd, Token(1), Interest::READABLE).is_err());
        assert!(s.deregister(fd).is_ok());
        assert!(s.deregister(fd).is_err());
    }
}
