//! Cross-thread selector wake-up via a self-pipe.
//!
//! A selector blocks in `epoll_wait`/`poll`; another thread (the acceptor
//! handing over a fresh connection) must be able to interrupt that wait
//! immediately instead of riding out the timeout. The classic mechanism is
//! the self-pipe trick: register the read end of a non-blocking pipe with
//! the selector, and have the waking thread write one byte to the write
//! end. Java NIO's `Selector.wakeup()` is the same idea.

#![cfg(target_os = "linux")]

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};

const O_NONBLOCK: c_int = 0x800;
const O_CLOEXEC: c_int = 0x8_0000;

extern "C" {
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// A self-pipe waker. The struct owns both pipe ends; `wake()` is safe to
/// call from any thread holding a reference.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The fds are plain integers; write(2) on a pipe is thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        sys::cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register with the selector (readable when woken).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupt the selector. Coalesces: if a wake is already pending the
    /// pipe is full-enough and the extra byte is dropped (EAGAIN), which is
    /// exactly the semantics we want.
    pub fn wake(&self) {
        let byte = 1u8;
        let _ = unsafe { write(self.write_fd, &byte as *const u8 as *const c_void, 1) };
    }

    /// Drain pending wake bytes (call when the selector reports the read fd
    /// readable). Returns how many bytes were pending.
    pub fn drain(&self) -> usize {
        let mut total = 0;
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
            if n <= 0 {
                break;
            }
            total += n as usize;
        }
        total
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{EpollSelector, Interest, Selector, Token};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn wake_makes_read_fd_readable() {
        let waker = Waker::new().unwrap();
        let mut sel = EpollSelector::new().unwrap();
        sel.register(waker.read_fd(), Token(0), Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        // Quiet before wake.
        let n = sel.select(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        waker.wake();
        let n = sel.select(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, Token(0));
        assert!(events[0].readable);
        assert!(waker.drain() >= 1);
        // Drained: quiet again (level-triggered would otherwise re-fire).
        events.clear();
        let n = sel.select(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn wakes_coalesce() {
        let waker = Waker::new().unwrap();
        for _ in 0..100_000 {
            waker.wake(); // must never block even when the pipe fills
        }
        assert!(waker.drain() > 0);
        assert_eq!(waker.drain(), 0);
    }

    #[test]
    fn cross_thread_wake_interrupts_blocking_select() {
        let waker = Arc::new(Waker::new().unwrap());
        let mut sel = EpollSelector::new().unwrap();
        sel.register(waker.read_fd(), Token(9), Interest::READABLE)
            .unwrap();
        let w2 = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake();
        });
        let start = Instant::now();
        let mut events = Vec::new();
        let n = sel
            .select(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        let waited = start.elapsed();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert!(
            waited < Duration::from_secs(2),
            "select should return promptly after wake, waited {waited:?}"
        );
    }
}
