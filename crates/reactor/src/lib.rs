//! `reactor` — real readiness selection for the live event-driven server.
//!
//! * [`sys`] — direct FFI to `epoll(7)` / `poll(2)` (no crate dependency;
//!   `std` already links the C library);
//! * [`selector`] — the level-triggered [`Selector`] abstraction with an
//!   O(ready) epoll backend and an O(registered) poll backend, mirroring
//!   the 2004-JVM-vs-modern-kernel distinction the paper's cost model
//!   parameterises;
//! * [`waker`] — a self-pipe `Selector.wakeup()` analogue for cross-thread
//!   event-loop interruption;
//! * [`wheel`] — a wall-clock hierarchical deadline wheel (the live twin of
//!   `desim::wheel`) backing per-connection lifecycle timers;
//! * [`backend`] — the [`Backend`] trait unifying readiness (epoll/poll)
//!   and completion (submit/reap) engines under one event-loop body;
//! * [`mock`] — a deterministic, fault-injecting mock-completion backend
//!   for tier-1 tests;
//! * [`uring`] — the real `io_uring` completion backend (runtime-probed,
//!   raw syscalls).

#[cfg(target_os = "linux")]
pub mod backend;
#[cfg(target_os = "linux")]
pub mod mock;
#[cfg(target_os = "linux")]
pub mod selector;
#[cfg(target_os = "linux")]
pub mod sys;
#[cfg(target_os = "linux")]
pub mod uring;
#[cfg(target_os = "linux")]
pub mod waker;
pub mod wheel;

#[cfg(target_os = "linux")]
pub use backend::{
    create, io_uring_available, Backend, BackendKind, Cqe, CqeKind, ReadinessBackend,
    SubmitError, BACKEND_ENV,
};
#[cfg(target_os = "linux")]
pub use mock::{MockCompletionBackend, MockConfig};
#[cfg(target_os = "linux")]
pub use selector::{EpollSelector, Event, Interest, PollSelector, Selector, Token};
#[cfg(target_os = "linux")]
pub use uring::UringBackend;
#[cfg(target_os = "linux")]
pub use waker::Waker;
pub use wheel::DeadlineWheel;
