//! Raw readiness-selection syscall bindings.
//!
//! The workspace's dependency policy rules out `libc`/`mio`, but `std`
//! already links the platform C library, so declaring the four symbols we
//! need is sound and adds no dependency. Two backends are bound:
//!
//! * `epoll(7)` — O(ready) scalable selection (what a modern JVM's NIO
//!   selector uses on Linux);
//! * `poll(2)` — O(registered) selection (what the paper's 2004 JVM's
//!   `select` actually did under the hood).
//!
//! Keeping both lets the ablation bench measure exactly the scan-cost
//! difference the simulated cost model parameterises.

#![cfg(target_os = "linux")]

use std::os::raw::{c_int, c_void};

pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. Packed on x86-64, as glibc declares it.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    pub fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
    pub fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
}

/// Convert a -1 syscall return into the thread's `errno` as `io::Error`.
pub fn cvt(ret: c_int) -> std::io::Result<c_int> {
    if ret < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Suppress unused warning for c_void (kept for future bindings).
#[allow(dead_code)]
type Unused = *const c_void;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_create_and_close() {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) }).expect("epoll_create1");
        assert!(fd >= 0);
        assert_eq!(unsafe { close(fd) }, 0);
    }

    #[test]
    fn epoll_event_layout() {
        // glibc packs epoll_event to 12 bytes on x86-64.
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        assert_eq!(std::mem::size_of::<PollFd>(), 8);
    }

    #[test]
    fn cvt_translates_errno() {
        let err = cvt(unsafe { epoll_ctl(-1, EPOLL_CTL_ADD, -1, std::ptr::null_mut()) });
        assert!(err.is_err());
    }

    #[test]
    fn poll_with_no_fds_times_out() {
        let n = cvt(unsafe { poll(std::ptr::null_mut(), 0, 10) }).unwrap();
        assert_eq!(n, 0);
    }
}
