//! Property tests: the request parser must never panic and must be
//! insensitive to how bytes are chunked; the response writer must round-trip
//! through the client-side parser.

use httpcore::{
    parse_response_head, write_head, ParseError, ParseOutcome, ParserLimits, RequestParser,
    Status, Version,
};
use proptest::prelude::*;

/// Small limits so the tripping inputs stay a few hundred bytes.
const TIGHT: ParserLimits = ParserLimits {
    max_line: 64,
    max_headers: 4,
};

/// Feed `raw` in `chunk`-sized slices, calling `parse()` after every feed.
/// Returns the first error and the cumulative bytes fed when it surfaced.
fn first_error_chunked(
    raw: &[u8],
    limits: ParserLimits,
    chunk: usize,
) -> Option<(ParseError, usize)> {
    let mut p = RequestParser::with_limits(limits);
    let mut fed = 0usize;
    for c in raw.chunks(chunk) {
        p.feed(c);
        fed += c.len();
        loop {
            match p.parse() {
                ParseOutcome::Error(e) => return Some((e, fed)),
                ParseOutcome::Complete(_) => continue,
                ParseOutcome::Incomplete => break,
            }
        }
    }
    None
}

/// The chunk boundary at which an error surfaced must be the one covering
/// the canonical tripping byte `trip`: detection depends only on how many
/// bytes have arrived, never on how they were sliced.
fn surfaced_at(fed: usize, chunk: usize, trip: usize) -> bool {
    fed >= trip && fed < trip + chunk
}

proptest! {
    /// Arbitrary bytes never panic the parser, no matter how they are
    /// chunked; repeated parse() calls always terminate.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048),
                           chunk in 1usize..64) {
        let mut p = RequestParser::new();
        for c in data.chunks(chunk) {
            p.feed(c);
            for _ in 0..8 {
                match p.parse() {
                    ParseOutcome::Complete(_) | ParseOutcome::Error(_) => {}
                    ParseOutcome::Incomplete => break,
                }
            }
        }
    }

    /// A well-formed request parses identically regardless of chunk size.
    #[test]
    fn chunking_is_invisible(target in "[a-z0-9/._-]{1,40}", chunk in 1usize..32) {
        let raw = format!("GET /{target} HTTP/1.1\r\nHost: sut\r\nX-K: v\r\n\r\n");
        let mut whole = RequestParser::new();
        whole.feed(raw.as_bytes());
        let ParseOutcome::Complete(expect) = whole.parse() else {
            return Err(TestCaseError::fail("whole parse failed"));
        };
        let mut pieces = RequestParser::new();
        let mut got = None;
        for c in raw.as_bytes().chunks(chunk) {
            pieces.feed(c);
            if let ParseOutcome::Complete(r) = pieces.parse() {
                got = Some(r);
            }
        }
        prop_assert_eq!(got.expect("piecewise parse incomplete"), expect);
    }

    /// Pipelined sequences of N requests all come back out, in order.
    #[test]
    fn pipelining_preserves_order(ids in proptest::collection::vec(0u32..100_000, 1..20)) {
        let mut raw = Vec::new();
        for id in &ids {
            raw.extend_from_slice(format!("GET /f/{id} HTTP/1.1\r\nHost: s\r\n\r\n").as_bytes());
        }
        let mut p = RequestParser::new();
        p.feed(&raw);
        for id in &ids {
            let ParseOutcome::Complete(r) = p.parse() else {
                return Err(TestCaseError::fail("missing pipelined request"));
            };
            prop_assert_eq!(r.target, format!("/f/{id}"));
        }
        prop_assert_eq!(p.parse(), ParseOutcome::Incomplete);
    }

    /// Every head the server writer emits parses back on the client with
    /// identical fields.
    #[test]
    fn response_head_roundtrip(len in 0usize..10_000_000, keep in any::<bool>()) {
        let mut out = Vec::new();
        let n = write_head(&mut out, Version::Http11, Status::Ok, len, keep, "Thu, 01 Jan 1970 00:00:00 GMT");
        let head = parse_response_head(&out).expect("complete").expect("valid");
        prop_assert_eq!(head.head_len, n);
        prop_assert_eq!(head.status, 200);
        prop_assert_eq!(head.content_length, len);
        prop_assert_eq!(head.keep_alive, keep);
    }

    /// The client response parser never panics on arbitrary bytes.
    #[test]
    fn response_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = parse_response_head(&data);
    }

    /// An oversized request line trips `LineTooLong` at the same byte — the
    /// end of its head block — for every chunking, with trailing pipelined
    /// bytes untouched, and matches the one-shot verdict.
    #[test]
    fn oversize_line_trips_at_the_same_byte(chunk in 1usize..48, extra in 0usize..64) {
        let target: String = "a".repeat(TIGHT.max_line + extra);
        let head = format!("GET /{target} HTTP/1.1\r\nHost: s\r\n\r\n");
        let mut raw = head.clone().into_bytes();
        raw.extend_from_slice(b"GET /next HTTP/1.1\r\n\r\n"); // pipelined tail
        let mut whole = RequestParser::with_limits(TIGHT);
        whole.feed(&raw);
        prop_assert_eq!(whole.parse(), ParseOutcome::Error(ParseError::LineTooLong));
        let (err, fed) = first_error_chunked(&raw, TIGHT, chunk).expect("must trip");
        prop_assert_eq!(err, ParseError::LineTooLong);
        prop_assert!(surfaced_at(fed, chunk, head.len()),
            "tripped at {} (chunk {}), head ends at {}", fed, chunk, head.len());
    }

    /// One header past the cap trips `TooManyHeaders` at the end of the
    /// head block for every chunking, and matches the one-shot verdict.
    #[test]
    fn header_cap_trips_at_the_same_byte(chunk in 1usize..48, extra in 1usize..4) {
        let mut head = String::from("GET /f HTTP/1.1\r\n");
        for i in 0..(TIGHT.max_headers + extra) {
            head.push_str(&format!("X-{i}: v\r\n"));
        }
        head.push_str("\r\n");
        let mut raw = head.clone().into_bytes();
        raw.extend_from_slice(b"trailing body bytes");
        let mut whole = RequestParser::with_limits(TIGHT);
        whole.feed(&raw);
        prop_assert_eq!(whole.parse(), ParseOutcome::Error(ParseError::TooManyHeaders));
        let (err, fed) = first_error_chunked(&raw, TIGHT, chunk).expect("must trip");
        prop_assert_eq!(err, ParseError::TooManyHeaders);
        prop_assert!(surfaced_at(fed, chunk, head.len()),
            "tripped at {} (chunk {}), head ends at {}", fed, chunk, head.len());
    }

    /// A head that never terminates (the slow-loris shape) trips the
    /// unbounded-head guard as soon as the byte budget is exceeded — a pure
    /// function of bytes arrived, identical for every chunking.
    #[test]
    fn unterminated_head_trips_at_the_byte_budget(chunk in 1usize..48) {
        let budget = TIGHT.max_line * (TIGHT.max_headers + 1);
        let raw = vec![b'a'; budget + 2 * 48];
        let (err, fed) = first_error_chunked(&raw, TIGHT, chunk).expect("must trip");
        prop_assert_eq!(err, ParseError::LineTooLong);
        // Canonical tripping byte: the first one past the budget.
        prop_assert!(surfaced_at(fed, chunk, budget + 1),
            "tripped at {} (chunk {}), budget {}", fed, chunk, budget);
    }
}
