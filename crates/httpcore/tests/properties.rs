//! Property tests: the request parser must never panic and must be
//! insensitive to how bytes are chunked; the response writer must round-trip
//! through the client-side parser.

use httpcore::{
    parse_response_head, write_head, ParseOutcome, RequestParser, Status, Version,
};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the parser, no matter how they are
    /// chunked; repeated parse() calls always terminate.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048),
                           chunk in 1usize..64) {
        let mut p = RequestParser::new();
        for c in data.chunks(chunk) {
            p.feed(c);
            for _ in 0..8 {
                match p.parse() {
                    ParseOutcome::Complete(_) | ParseOutcome::Error(_) => {}
                    ParseOutcome::Incomplete => break,
                }
            }
        }
    }

    /// A well-formed request parses identically regardless of chunk size.
    #[test]
    fn chunking_is_invisible(target in "[a-z0-9/._-]{1,40}", chunk in 1usize..32) {
        let raw = format!("GET /{target} HTTP/1.1\r\nHost: sut\r\nX-K: v\r\n\r\n");
        let mut whole = RequestParser::new();
        whole.feed(raw.as_bytes());
        let ParseOutcome::Complete(expect) = whole.parse() else {
            return Err(TestCaseError::fail("whole parse failed"));
        };
        let mut pieces = RequestParser::new();
        let mut got = None;
        for c in raw.as_bytes().chunks(chunk) {
            pieces.feed(c);
            if let ParseOutcome::Complete(r) = pieces.parse() {
                got = Some(r);
            }
        }
        prop_assert_eq!(got.expect("piecewise parse incomplete"), expect);
    }

    /// Pipelined sequences of N requests all come back out, in order.
    #[test]
    fn pipelining_preserves_order(ids in proptest::collection::vec(0u32..100_000, 1..20)) {
        let mut raw = Vec::new();
        for id in &ids {
            raw.extend_from_slice(format!("GET /f/{id} HTTP/1.1\r\nHost: s\r\n\r\n").as_bytes());
        }
        let mut p = RequestParser::new();
        p.feed(&raw);
        for id in &ids {
            let ParseOutcome::Complete(r) = p.parse() else {
                return Err(TestCaseError::fail("missing pipelined request"));
            };
            prop_assert_eq!(r.target, format!("/f/{id}"));
        }
        prop_assert_eq!(p.parse(), ParseOutcome::Incomplete);
    }

    /// Every head the server writer emits parses back on the client with
    /// identical fields.
    #[test]
    fn response_head_roundtrip(len in 0usize..10_000_000, keep in any::<bool>()) {
        let mut out = Vec::new();
        let n = write_head(&mut out, Version::Http11, Status::Ok, len, keep, "Thu, 01 Jan 1970 00:00:00 GMT");
        let head = parse_response_head(&out).expect("complete").expect("valid");
        prop_assert_eq!(head.head_len, n);
        prop_assert_eq!(head.status, 200);
        prop_assert_eq!(head.content_length, len);
        prop_assert_eq!(head.keep_alive, keep);
    }

    /// The client response parser never panics on arbitrary bytes.
    #[test]
    fn response_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = parse_response_head(&data);
    }
}
