//! The synthetic static content store the real servers serve.
//!
//! A [`ContentStore`] materialises a SURGE [`FileSet`] as an in-memory
//! virtual document tree: file `FileId(i)` lives at path `/f/<i>` and its
//! body is a window into one shared byte arena (no per-file allocation —
//! serving is a bounds-checked slice, like `sendfile` from page cache).

use std::sync::Arc;
use workload::{FileId, FileSet};

/// In-memory static site.
#[derive(Debug)]
pub struct ContentStore {
    sizes: Vec<u64>,
    /// Pre-rendered Last-Modified header values, one per file — the reply
    /// hot path must not re-format a date (or allocate) per response.
    last_modified: Vec<String>,
    /// Shared so [`ArenaSlice`] handles can hold the arena alive without
    /// copying body bytes out of it.
    arena: Arc<[u8]>,
}

/// A cheaply clonable, owned handle to one file's body: the shared arena
/// plus a length. This is what a staged zero-copy response holds instead of
/// a memcpy'd `Vec<u8>` — cloning it is one atomic increment, and the bytes
/// are read straight out of the arena at `write_vectored` time.
#[derive(Debug, Clone)]
pub struct ArenaSlice {
    arena: Arc<[u8]>,
    len: usize,
}

impl ArenaSlice {
    /// The body bytes (a prefix window of the arena).
    pub fn as_bytes(&self) -> &[u8] {
        &self.arena[..self.len]
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl ContentStore {
    /// Build from a SURGE file set. The arena is as large as the biggest
    /// file; every body is served as a prefix slice of it.
    pub fn from_fileset(files: &FileSet) -> ContentStore {
        let sizes: Vec<u64> = files.iter().map(|(_, s)| s).collect();
        let max = sizes.iter().copied().max().unwrap_or(0) as usize;
        // Deterministic, compressible-but-not-trivial filler.
        let arena: Vec<u8> = (0..max).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
        let last_modified = (0..sizes.len())
            .map(|i| crate::date::http_date(lm_unix(i as u32)))
            .collect();
        ContentStore {
            sizes,
            last_modified,
            arena: arena.into(),
        }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Canonical path of a file.
    pub fn path_of(&self, id: FileId) -> String {
        format!("/f/{}", id.0)
    }

    /// Resolve a request target to a file id.
    pub fn resolve(&self, target: &str) -> Option<FileId> {
        let rest = target.strip_prefix("/f/")?;
        // Ignore any query string.
        let rest = rest.split('?').next().unwrap_or(rest);
        let id: u32 = rest.parse().ok()?;
        if (id as usize) < self.sizes.len() {
            Some(FileId(id))
        } else {
            None
        }
    }

    /// Body of a file, as a slice of the shared arena.
    pub fn body(&self, id: FileId) -> &[u8] {
        let len = self.sizes[id.0 as usize] as usize;
        &self.arena[..len]
    }

    /// Body of a file as an owned arena handle — the zero-copy staging
    /// form: no bytes move, the response just keeps the arena alive.
    pub fn body_slice(&self, id: FileId) -> ArenaSlice {
        ArenaSlice {
            arena: Arc::clone(&self.arena),
            len: self.sizes[id.0 as usize] as usize,
        }
    }

    /// Size of a file in bytes.
    pub fn size_of(&self, id: FileId) -> u64 {
        self.sizes[id.0 as usize]
    }

    /// Deterministic Last-Modified timestamp of a file (unix seconds):
    /// paper-era content, staggered per file so conditional-GET tests can
    /// tell documents apart.
    pub fn last_modified_unix(&self, id: FileId) -> u64 {
        lm_unix(id.0)
    }

    /// The Last-Modified header value of a file — pre-rendered at store
    /// build, so a reply costs no date formatting and no allocation.
    pub fn last_modified(&self, id: FileId) -> &str {
        &self.last_modified[id.0 as usize]
    }
}

fn lm_unix(id: u32) -> u64 {
    // 2004-01-01T00:00:00Z = 1072915200; staggered per file so
    // conditional-GET tests can tell documents apart.
    1_072_915_200 + id as u64 * 60
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;
    use workload::SurgeConfig;

    fn store() -> ContentStore {
        let mut rng = Rng::new(5);
        let fs = FileSet::build(
            &SurgeConfig {
                num_files: 50,
                ..SurgeConfig::default()
            },
            &mut rng,
        );
        ContentStore::from_fileset(&fs)
    }

    #[test]
    fn paths_resolve_roundtrip() {
        let s = store();
        for i in 0..s.len() as u32 {
            let id = FileId(i);
            assert_eq!(s.resolve(&s.path_of(id)), Some(id));
        }
    }

    #[test]
    fn unknown_paths_do_not_resolve() {
        let s = store();
        assert_eq!(s.resolve("/"), None);
        assert_eq!(s.resolve("/f/999999"), None);
        assert_eq!(s.resolve("/f/abc"), None);
        assert_eq!(s.resolve("/g/1"), None);
    }

    #[test]
    fn query_strings_ignored() {
        let s = store();
        assert_eq!(s.resolve("/f/3?cache=no"), Some(FileId(3)));
    }

    #[test]
    fn bodies_match_sizes() {
        let s = store();
        for i in 0..s.len() as u32 {
            let id = FileId(i);
            assert_eq!(s.body(id).len() as u64, s.size_of(id));
        }
    }

    #[test]
    fn last_modified_is_stable_and_distinct() {
        let s = store();
        let a = s.last_modified(FileId(0));
        assert_eq!(a, s.last_modified(FileId(0)));
        assert_ne!(a, s.last_modified(FileId(1)));
        assert!(a.ends_with(" GMT"));
        assert!(a.contains("2004"), "{a}");
    }

    #[test]
    fn bodies_share_a_prefix_arena() {
        let s = store();
        let a = s.body(FileId(0));
        let b = s.body(FileId(1));
        let common = a.len().min(b.len());
        assert_eq!(&a[..common], &b[..common]);
    }
}
