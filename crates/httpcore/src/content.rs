//! The synthetic static content store the real servers serve.
//!
//! A [`ContentStore`] materialises a SURGE [`FileSet`] as an in-memory
//! virtual document tree: file `FileId(i)` lives at path `/f/<i>` and its
//! body is a window into one shared byte arena (no per-file allocation —
//! serving is a bounds-checked slice, like `sendfile` from page cache).

use workload::{FileId, FileSet};

/// In-memory static site.
#[derive(Debug)]
pub struct ContentStore {
    sizes: Vec<u64>,
    arena: Vec<u8>,
}

impl ContentStore {
    /// Build from a SURGE file set. The arena is as large as the biggest
    /// file; every body is served as a prefix slice of it.
    pub fn from_fileset(files: &FileSet) -> ContentStore {
        let sizes: Vec<u64> = files.iter().map(|(_, s)| s).collect();
        let max = sizes.iter().copied().max().unwrap_or(0) as usize;
        // Deterministic, compressible-but-not-trivial filler.
        let arena: Vec<u8> = (0..max).map(|i| (i as u8).wrapping_mul(31).wrapping_add(7)).collect();
        ContentStore { sizes, arena }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Canonical path of a file.
    pub fn path_of(&self, id: FileId) -> String {
        format!("/f/{}", id.0)
    }

    /// Resolve a request target to a file id.
    pub fn resolve(&self, target: &str) -> Option<FileId> {
        let rest = target.strip_prefix("/f/")?;
        // Ignore any query string.
        let rest = rest.split('?').next().unwrap_or(rest);
        let id: u32 = rest.parse().ok()?;
        if (id as usize) < self.sizes.len() {
            Some(FileId(id))
        } else {
            None
        }
    }

    /// Body of a file, as a slice of the shared arena.
    pub fn body(&self, id: FileId) -> &[u8] {
        let len = self.sizes[id.0 as usize] as usize;
        &self.arena[..len]
    }

    /// Size of a file in bytes.
    pub fn size_of(&self, id: FileId) -> u64 {
        self.sizes[id.0 as usize]
    }

    /// Deterministic Last-Modified timestamp of a file (unix seconds):
    /// paper-era content, staggered per file so conditional-GET tests can
    /// tell documents apart.
    pub fn last_modified_unix(&self, id: FileId) -> u64 {
        // 2004-01-01T00:00:00Z = 1072915200.
        1_072_915_200 + id.0 as u64 * 60
    }

    /// The Last-Modified header value of a file.
    pub fn last_modified(&self, id: FileId) -> String {
        crate::date::http_date(self.last_modified_unix(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;
    use workload::SurgeConfig;

    fn store() -> ContentStore {
        let mut rng = Rng::new(5);
        let fs = FileSet::build(
            &SurgeConfig {
                num_files: 50,
                ..SurgeConfig::default()
            },
            &mut rng,
        );
        ContentStore::from_fileset(&fs)
    }

    #[test]
    fn paths_resolve_roundtrip() {
        let s = store();
        for i in 0..s.len() as u32 {
            let id = FileId(i);
            assert_eq!(s.resolve(&s.path_of(id)), Some(id));
        }
    }

    #[test]
    fn unknown_paths_do_not_resolve() {
        let s = store();
        assert_eq!(s.resolve("/"), None);
        assert_eq!(s.resolve("/f/999999"), None);
        assert_eq!(s.resolve("/f/abc"), None);
        assert_eq!(s.resolve("/g/1"), None);
    }

    #[test]
    fn query_strings_ignored() {
        let s = store();
        assert_eq!(s.resolve("/f/3?cache=no"), Some(FileId(3)));
    }

    #[test]
    fn bodies_match_sizes() {
        let s = store();
        for i in 0..s.len() as u32 {
            let id = FileId(i);
            assert_eq!(s.body(id).len() as u64, s.size_of(id));
        }
    }

    #[test]
    fn last_modified_is_stable_and_distinct() {
        let s = store();
        let a = s.last_modified(FileId(0));
        assert_eq!(a, s.last_modified(FileId(0)));
        assert_ne!(a, s.last_modified(FileId(1)));
        assert!(a.ends_with(" GMT"));
        assert!(a.contains("2004"), "{a}");
    }

    #[test]
    fn bodies_share_a_prefix_arena() {
        let s = store();
        let a = s.body(FileId(0));
        let b = s.body(FileId(1));
        let common = a.len().min(b.len());
        assert_eq!(&a[..common], &b[..common]);
    }
}
