//! `httpcore` — real HTTP/1.1 machinery shared by the live servers and the
//! live load generator.
//!
//! * [`buffer`] — read-accumulation buffer with front consumption;
//! * [`request`] — incremental, never-panicking request parser with
//!   persistent-connection and pipelining semantics;
//! * [`response`] — response head writer (server) and parser (client);
//! * [`reply`] — staged zero-copy reply queue (head + arena-slice segments
//!   flushed with `write_vectored`);
//! * [`content`] — the SURGE content store served by the real servers;
//! * [`date`] — allocation-light IMF-fixdate formatting;
//! * [`policy`] — the connection-lifecycle policy (timeouts + accept-path
//!   defenses) both live servers accept, making the Fig-3 asymmetry a
//!   config knob instead of an architectural constant.

pub mod buffer;
pub mod content;
pub mod date;
pub mod policy;
pub mod reply;
pub mod request;
pub mod response;

pub use buffer::ReadBuf;
pub use content::{ArenaSlice, ContentStore};
pub use policy::LifecyclePolicy;
pub use reply::{HeadPool, ReplyQueue};
pub use date::{http_date, now_http_date};
pub use request::{
    Method, ParseError, ParseOutcome, ParserLimits, Request, RequestParser, RequestPool, Version,
};
pub use response::{parse_response_head, write_head, write_head_full, ResponseHead, Status};
