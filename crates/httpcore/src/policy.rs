//! Connection-lifecycle policy — the knobs both live servers share.
//!
//! The paper's Fig 3 asymmetry (httpd2's 15 s idle timeout streams
//! connection resets; nio never times a client out and reports zero errors)
//! is a *policy* difference, not an architectural necessity. Expressing it
//! as one config struct both servers accept makes the asymmetry falsifiable
//! from a single codebase: `idle_timeout: None` reproduces the paper's nio,
//! `Some(15 s)` reproduces httpd2's reset stream from the same binary.
//!
//! The defense knobs (`fd_reserve`, `max_conns`) harden the accept path
//! against resource exhaustion; the deadline knobs (`header_timeout`,
//! `write_stall_timeout`) bound how long a degenerate peer — a slow-loris
//! header dribbler, a client that never drains its socket — can hold a
//! connection. Event-driven servers must carry this bookkeeping themselves:
//! no blocked thread does it for them.

use std::time::Duration;

/// Per-connection lifecycle policy plus accept-path defenses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecyclePolicy {
    /// Close keep-alive connections idle this long. `None` never times a
    /// client out (the paper's nio); `Some(15 s)` is httpd2's policy. The
    /// close is abortive (RST), matching Apache's observable behaviour in
    /// Fig 3.
    pub idle_timeout: Option<Duration>,
    /// Bound on delivering a complete request head, measured from the first
    /// byte of the head. Expiry is answered with `408 Request Timeout` —
    /// the anti-slow-loris deadline.
    pub header_timeout: Option<Duration>,
    /// Bound on a client that stops draining its socket mid-reply (no write
    /// progress for this long while output is pending). Expiry is an
    /// abortive close.
    pub write_stall_timeout: Option<Duration>,
    /// Refuse new connections once accepted fds climb within this many fds
    /// of `RLIMIT_NOFILE`, keeping headroom for the server's own plumbing
    /// (selectors, wakers, content store). 0 disables the reserve.
    pub fd_reserve: u64,
    /// Admission cap: refuse new connections (with `503 Connection: close`)
    /// while at least this many are open. Coarser than the shed watermark —
    /// this is the hard ceiling, not the load-shedding threshold.
    pub max_conns: Option<u64>,
    /// `SO_RCVBUF` for every accepted socket, bytes (`None` keeps the
    /// kernel default). At a million mostly-idle connections the kernel's
    /// per-socket receive buffer — not the server's own state — dominates
    /// memory; requests are a few hundred bytes, so this can be tiny.
    pub recv_buffer: Option<u32>,
    /// `SO_SNDBUF` for every accepted socket, bytes (`None` keeps the
    /// kernel default). Large enough for a whole reply, the kernel takes
    /// a full response in one vectored write; small, it trades syscalls
    /// (and write-readiness parking) for per-connection kernel memory.
    pub send_buffer: Option<u32>,
}

impl Default for LifecyclePolicy {
    /// Paper-faithful defaults: no timeouts anywhere (nio's zero-error
    /// Fig-3 curve), no admission cap, and a modest fd reserve — the one
    /// defense that costs nothing until the process is nearly out of fds.
    fn default() -> Self {
        LifecyclePolicy {
            idle_timeout: None,
            header_timeout: None,
            write_stall_timeout: None,
            fd_reserve: 64,
            max_conns: None,
            recv_buffer: None,
            // A send buffer larger than any reply (bodies are capped well
            // below this) lets a worker hand the kernel a whole response in
            // one vectored write instead of parking the connection in the
            // WRITABLE set while a default-sized buffer drains.
            send_buffer: Some(1 << 19),
        }
    }
}

impl LifecyclePolicy {
    /// httpd2's observable policy in the paper: 15 s keep-alive timeout.
    pub fn httpd2() -> Self {
        LifecyclePolicy {
            idle_timeout: Some(Duration::from_secs(15)),
            ..LifecyclePolicy::default()
        }
    }

    /// A hardened profile for adversarial-client experiments: every
    /// deadline armed, admission capped.
    pub fn hardened(idle: Duration, header: Duration, write_stall: Duration) -> Self {
        LifecyclePolicy {
            idle_timeout: Some(idle),
            header_timeout: Some(header),
            write_stall_timeout: Some(write_stall),
            ..LifecyclePolicy::default()
        }
    }

    /// The same policy with both kernel socket buffers pinned — the
    /// per-connection-memory profile for frontier ramps (`repro scale`).
    pub fn with_buffers(self, recv: u32, send: u32) -> Self {
        LifecyclePolicy {
            recv_buffer: Some(recv),
            send_buffer: Some(send),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_nio() {
        let p = LifecyclePolicy::default();
        assert_eq!(p.idle_timeout, None);
        assert_eq!(p.header_timeout, None);
        assert_eq!(p.write_stall_timeout, None);
        assert_eq!(p.max_conns, None);
        assert!(p.fd_reserve > 0, "fd reserve on by default");
        assert_eq!(p.recv_buffer, None, "kernel default rcvbuf by default");
        assert_eq!(p.send_buffer, Some(1 << 19), "reply-sized sndbuf");
    }

    #[test]
    fn with_buffers_pins_both_socket_buffers() {
        let p = LifecyclePolicy::default().with_buffers(4096, 16384);
        assert_eq!(p.recv_buffer, Some(4096));
        assert_eq!(p.send_buffer, Some(16384));
        // The lifecycle knobs ride through untouched.
        assert_eq!(p.idle_timeout, None);
        assert_eq!(p.fd_reserve, LifecyclePolicy::default().fd_reserve);
    }

    #[test]
    fn httpd2_profile_matches_paper() {
        assert_eq!(
            LifecyclePolicy::httpd2().idle_timeout,
            Some(Duration::from_secs(15))
        );
    }

    #[test]
    fn hardened_arms_every_deadline() {
        let p = LifecyclePolicy::hardened(
            Duration::from_secs(1),
            Duration::from_secs(2),
            Duration::from_secs(3),
        );
        assert!(p.idle_timeout.is_some());
        assert!(p.header_timeout.is_some());
        assert!(p.write_stall_timeout.is_some());
    }
}
