//! A growable byte buffer with cheap front consumption.
//!
//! The parser needs to accumulate bytes from nonblocking reads and consume
//! complete requests off the front while keeping pipelined leftovers. This
//! is a minimal `BytesMut`: contiguous storage, an offset for consumed
//! bytes, and amortised compaction so the offset never grows unboundedly.

/// Read-accumulation buffer.
#[derive(Debug, Default)]
pub struct ReadBuf {
    data: Vec<u8>,
    /// Bytes before this offset have been consumed.
    start: usize,
}

impl ReadBuf {
    pub fn new() -> Self {
        ReadBuf {
            data: Vec::new(),
            start: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        ReadBuf {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unconsumed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Number of unconsumed bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append incoming bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.maybe_compact();
        self.data.extend_from_slice(bytes);
    }

    /// Mark `n` unconsumed bytes as consumed (panics if n > len: consuming
    /// bytes that never arrived is a parser bug).
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume({n}) beyond buffer ({})", self.len());
        self.start += n;
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
    }

    /// Compact when the dead prefix dominates the allocation.
    fn maybe_compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.data.len() {
            self.data.copy_within(self.start.., 0);
            self.data.truncate(self.data.len() - self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_and_consume() {
        let mut b = ReadBuf::new();
        assert!(b.is_empty());
        b.extend(b"hello ");
        b.extend(b"world");
        assert_eq!(b.as_slice(), b"hello world");
        b.consume(6);
        assert_eq!(b.as_slice(), b"world");
        b.consume(5);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "consume")]
    fn over_consume_panics() {
        let mut b = ReadBuf::new();
        b.extend(b"hi");
        b.consume(3);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = ReadBuf::new();
        let chunk = vec![7u8; 1024];
        for _ in 0..16 {
            b.extend(&chunk);
        }
        b.consume(10_000);
        let before: Vec<u8> = b.as_slice().to_vec();
        b.extend(b"tail");
        let mut expect = before;
        expect.extend_from_slice(b"tail");
        assert_eq!(b.as_slice(), &expect[..]);
    }

    #[test]
    fn full_consume_resets_storage() {
        let mut b = ReadBuf::new();
        b.extend(b"abc");
        b.consume(3);
        b.extend(b"xyz");
        assert_eq!(b.as_slice(), b"xyz");
    }
}
