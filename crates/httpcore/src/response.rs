//! HTTP/1.1 response serialisation.
//!
//! Responses are rendered head-first into a caller-provided `Vec<u8>` so a
//! server can stage head + body into one write buffer (one `writev`-shaped
//! syscall in spirit). Bodies in this study are synthetic static files, so
//! the builder takes a length plus a fill strategy instead of owned bytes —
//! the content store shares one large arena slice for every reply.

use crate::request::Version;

/// Response status subset the servers emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Ok,
    NotModified,
    BadRequest,
    RequestTimeout,
    NotFound,
    RequestHeaderFieldsTooLarge,
    NotImplemented,
    ServiceUnavailable,
}

impl Status {
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotModified => 304,
            Status::BadRequest => 400,
            Status::RequestTimeout => 408,
            Status::NotFound => 404,
            Status::RequestHeaderFieldsTooLarge => 431,
            Status::NotImplemented => 501,
            Status::ServiceUnavailable => 503,
        }
    }

    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::NotModified => "Not Modified",
            Status::BadRequest => "Bad Request",
            Status::RequestTimeout => "Request Timeout",
            Status::NotFound => "Not Found",
            Status::RequestHeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::NotImplemented => "Not Implemented",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// Render a response head into `out`. Returns the head length.
///
/// `content_length` is always emitted (the load generator relies on it to
/// delimit replies on persistent connections).
pub fn write_head(
    out: &mut Vec<u8>,
    version: Version,
    status: Status,
    content_length: usize,
    keep_alive: bool,
    date: &str,
) -> usize {
    write_head_full(out, version, status, content_length, keep_alive, date, None)
}

/// [`write_head`] plus an optional `Last-Modified` header (conditional-GET
/// support).
pub fn write_head_full(
    out: &mut Vec<u8>,
    version: Version,
    status: Status,
    content_length: usize,
    keep_alive: bool,
    date: &str,
    last_modified: Option<&str>,
) -> usize {
    let before = out.len();
    let ver = match version {
        Version::Http11 => "HTTP/1.1",
        Version::Http10 => "HTTP/1.0",
    };
    // Rendered by hand: this runs once per reply, and `core::fmt` is the
    // single most expensive thing the old path did besides the body copy.
    out.extend_from_slice(ver.as_bytes());
    out.push(b' ');
    push_decimal(out, status.code() as u64);
    out.push(b' ');
    out.extend_from_slice(status.reason().as_bytes());
    out.extend_from_slice(b"\r\nServer: eventscale/0.1\r\nDate: ");
    out.extend_from_slice(date.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: application/octet-stream\r\nContent-Length: ");
    push_decimal(out, content_length as u64);
    out.extend_from_slice(b"\r\nConnection: ");
    out.extend_from_slice(if keep_alive {
        b"keep-alive".as_slice()
    } else {
        b"close".as_slice()
    });
    out.extend_from_slice(b"\r\n");
    if let Some(lm) = last_modified {
        out.extend_from_slice(b"Last-Modified: ");
        out.extend_from_slice(lm.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.len() - before
}

/// Append the decimal digits of `v` without going through `core::fmt`.
fn push_decimal(out: &mut Vec<u8>, mut v: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Parse a response head on the *client* side (the load generator): returns
/// `(head_len, status_code, content_length, keep_alive)` or `None` if the
/// head is not complete yet.
pub fn parse_response_head(data: &[u8]) -> Option<Result<ResponseHead, &'static str>> {
    let head_end = data.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = &data[..head_end];
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        if l.last() == Some(&b'\r') {
            &l[..l.len() - 1]
        } else {
            l
        }
    });
    let status_line = match lines.next() {
        Some(l) => l,
        None => return Some(Err("empty head")),
    };
    let mut parts = status_line.splitn(3, |&b| b == b' ');
    let _version = parts.next();
    let code = match parts
        .next()
        .and_then(|c| std::str::from_utf8(c).ok())
        .and_then(|c| c.parse::<u16>().ok())
    {
        Some(c) => c,
        None => return Some(Err("bad status code")),
    };
    let mut content_length = None;
    let mut keep_alive = true;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some(colon) = line.iter().position(|&b| b == b':') else {
            return Some(Err("bad header"));
        };
        let name = &line[..colon];
        let value = std::str::from_utf8(&line[colon + 1..])
            .unwrap_or("")
            .trim();
        if name.eq_ignore_ascii_case(b"content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = Some(n),
                Err(_) => return Some(Err("bad content-length")),
            }
        } else if name.eq_ignore_ascii_case(b"connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let Some(content_length) = content_length else {
        return Some(Err("missing content-length"));
    };
    Some(Ok(ResponseHead {
        head_len: head_end + 4,
        status: code,
        content_length,
        keep_alive,
    }))
}

/// Client-side view of a response head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHead {
    pub head_len: usize,
    pub status: u16,
    pub content_length: usize,
    pub keep_alive: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_roundtrips_through_client_parser() {
        let mut out = Vec::new();
        let n = write_head(&mut out, Version::Http11, Status::Ok, 1234, true, "D");
        assert_eq!(n, out.len());
        out.extend_from_slice(&[0u8; 10]); // some body bytes
        let head = parse_response_head(&out).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, 1234);
        assert!(head.keep_alive);
        assert_eq!(head.head_len, n);
    }

    #[test]
    fn close_connection_signalled() {
        let mut out = Vec::new();
        write_head(&mut out, Version::Http11, Status::NotFound, 0, false, "D");
        let head = parse_response_head(&out).unwrap().unwrap();
        assert_eq!(head.status, 404);
        assert!(!head.keep_alive);
    }

    #[test]
    fn incomplete_head_returns_none() {
        assert!(parse_response_head(b"HTTP/1.1 200 OK\r\nContent-Len").is_none());
    }

    #[test]
    fn missing_content_length_is_an_error() {
        let r = parse_response_head(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::ServiceUnavailable.code(), 503);
        assert_eq!(Status::NotImplemented.reason(), "Not Implemented");
        assert_eq!(Status::RequestTimeout.code(), 408);
        assert_eq!(Status::RequestTimeout.reason(), "Request Timeout");
        assert_eq!(Status::RequestHeaderFieldsTooLarge.code(), 431);
        assert_eq!(
            Status::RequestHeaderFieldsTooLarge.reason(),
            "Request Header Fields Too Large"
        );
    }

    #[test]
    fn last_modified_emitted_when_given() {
        let mut out = Vec::new();
        write_head_full(
            &mut out,
            Version::Http11,
            Status::Ok,
            10,
            true,
            "D",
            Some("Thu, 01 Jan 2004 00:00:00 GMT"),
        );
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("Last-Modified: Thu, 01 Jan 2004 00:00:00 GMT\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        // And the client parser still handles it.
        let head = parse_response_head(&out).unwrap().unwrap();
        assert_eq!(head.content_length, 10);
    }

    #[test]
    fn not_modified_status() {
        assert_eq!(Status::NotModified.code(), 304);
        assert_eq!(Status::NotModified.reason(), "Not Modified");
    }

    #[test]
    fn http10_head() {
        let mut out = Vec::new();
        write_head(&mut out, Version::Http10, Status::Ok, 5, false, "D");
        assert!(out.starts_with(b"HTTP/1.0 200 OK\r\n"));
    }
}
