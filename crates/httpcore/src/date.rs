//! IMF-fixdate formatting (`Sun, 06 Nov 1994 08:49:37 GMT`) without any
//! date-time dependency: civil-from-days per Howard Hinnant's algorithms.

/// Render an HTTP-date for the given Unix timestamp (seconds).
pub fn http_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs_of_day = unix_secs % 86_400;
    let (y, m, d) = civil_from_days(days);
    // 1970-01-01 was a Thursday (weekday index 4 with Sunday = 0).
    let weekday = ((days % 7) + 4) % 7;
    const WDAYS: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!(
        "{}, {:02} {} {} {:02}:{:02}:{:02} GMT",
        WDAYS[weekday as usize],
        d,
        MONTHS[(m - 1) as usize],
        y,
        secs_of_day / 3600,
        (secs_of_day / 60) % 60,
        secs_of_day % 60
    )
}

/// Days since 1970-01-01 → (year, month, day) in the proleptic Gregorian
/// calendar.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Current wall-clock HTTP-date (the only place the real servers touch the
/// system clock).
pub fn now_http_date() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    http_date(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_reference_date() {
        // The RFC 9110 example: Sun, 06 Nov 1994 08:49:37 GMT = 784111777.
        assert_eq!(http_date(784_111_777), "Sun, 06 Nov 1994 08:49:37 GMT");
    }

    #[test]
    fn epoch() {
        assert_eq!(http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
    }

    #[test]
    fn leap_day() {
        // 2004-02-29 12:00:00 UTC = 1078056000 (the paper's year!).
        assert_eq!(http_date(1_078_056_000), "Sun, 29 Feb 2004 12:00:00 GMT");
    }

    #[test]
    fn y2038_is_fine() {
        assert_eq!(http_date(2_147_483_648), "Tue, 19 Jan 2038 03:14:08 GMT");
    }

    #[test]
    fn now_does_not_panic() {
        let s = now_http_date();
        assert!(s.ends_with(" GMT"));
    }
}
