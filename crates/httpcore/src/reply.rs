//! Staged zero-copy response queue.
//!
//! The old reply path rendered a head into the connection's output buffer
//! and then **memcpy'd the whole body after it** — for a content store whose
//! entire point is that every body is a window into one shared arena, the
//! copy was pure overhead (and the dominant per-reply cost for large files).
//!
//! A [`ReplyQueue`] instead stages a response as segments: an owned head
//! (`Vec<u8>`) followed by an [`ArenaSlice`] body handle. Nothing is copied;
//! [`ReplyQueue::write_to`] hands the kernel both segments in one
//! `write_vectored` (writev) call with a cursor that spans segment
//! boundaries, so a partial write can land mid-head or mid-body and the next
//! call resumes exactly where the kernel stopped. Pipelined responses queue
//! as further segments and are coalesced into the same vectored call, up to
//! [`MAX_IOVECS`] iovecs per syscall.
//!
//! Head buffers are recycled through a **per-worker** [`HeadPool`] free
//! list: a steady-state connection serves every reply without allocating,
//! and an idle connection holds no spare buffers at all. (An earlier design
//! kept the free list inside each `ReplyQueue`; at a million mostly-idle
//! connections those per-connection spares dominate resident memory, so the
//! pool moved to the worker that owns the connections.)

use crate::content::ArenaSlice;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};

/// Segments handed to one `writev` call. 16 covers an 8-deep pipelined
/// burst of (head, body) pairs; deeper queues simply take another call.
pub const MAX_IOVECS: usize = 16;

/// Cap on recycled head buffers kept per pool (i.e. per worker thread).
const MAX_SPARE_HEADS: usize = 64;

/// A worker-owned free list of head buffers, shared by every connection the
/// worker serves. One pool amortises head allocations across the whole
/// worker instead of pinning up to [`MAX_SPARE_HEADS`] spare `Vec`s inside
/// each open connection.
#[derive(Debug, Default)]
pub struct HeadPool {
    spares: Vec<Vec<u8>>,
}

impl HeadPool {
    pub fn new() -> HeadPool {
        HeadPool::default()
    }

    /// A cleared head buffer, recycled when possible. Render a response
    /// head into it and hand it to [`ReplyQueue::push_head`].
    pub fn take(&mut self) -> Vec<u8> {
        self.spares.pop().unwrap_or_default()
    }

    /// Return a retired buffer for reuse (dropped once the pool is full).
    pub fn give(&mut self, mut buf: Vec<u8>) {
        if self.spares.len() < MAX_SPARE_HEADS {
            buf.clear();
            self.spares.push(buf);
        }
    }

    /// Buffers currently parked in the pool.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }
}

/// One staged span of output bytes.
#[derive(Debug)]
enum Segment {
    /// Owned bytes: a response head (or any copied payload, e.g. an error
    /// response).
    Head(Vec<u8>),
    /// Zero-copy body: a window into the shared content arena.
    Body(ArenaSlice),
}

impl Segment {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Segment::Head(v) => v,
            Segment::Body(s) => s.as_bytes(),
        }
    }
}

/// Per-connection staged output: a FIFO of segments with a front cursor.
#[derive(Debug, Default)]
pub struct ReplyQueue {
    segs: VecDeque<Segment>,
    /// Bytes of the front segment already written.
    front_pos: usize,
    /// Total unwritten bytes across all segments.
    pending: usize,
}

impl ReplyQueue {
    pub fn new() -> ReplyQueue {
        ReplyQueue::default()
    }

    /// No bytes owed.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Unwritten bytes across all staged segments.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Stage owned bytes (a rendered head, taken from the worker's
    /// [`HeadPool`]). Empty buffers are returned to the pool rather than
    /// queued.
    pub fn push_head(&mut self, head: Vec<u8>, pool: &mut HeadPool) {
        if head.is_empty() {
            pool.give(head);
            return;
        }
        self.pending += head.len();
        self.segs.push_back(Segment::Head(head));
    }

    /// Stage a zero-copy body.
    pub fn push_body(&mut self, body: ArenaSlice) {
        if body.is_empty() {
            return;
        }
        self.pending += body.len();
        self.segs.push_back(Segment::Body(body));
    }

    /// Advance the cursor past `n` freshly written bytes, retiring (and
    /// recycling into `pool`) fully consumed segments.
    fn advance(&mut self, mut n: usize, pool: &mut HeadPool) {
        debug_assert!(n <= self.pending);
        self.pending -= n;
        while n > 0 {
            let front_len = self.segs.front().expect("bytes pending").as_bytes().len();
            let remaining = front_len - self.front_pos;
            if n < remaining {
                self.front_pos += n;
                return;
            }
            n -= remaining;
            self.front_pos = 0;
            if let Some(Segment::Head(buf)) = self.segs.pop_front() {
                pool.give(buf);
            }
        }
    }

    /// Copy up to `max` unwritten bytes into `out` (appending), starting
    /// at the cursor, without advancing it. This is the completion-backend
    /// read side of the queue: a submit/reap engine owns its write buffer
    /// for the op's whole lifetime, so it peeks a chunk, submits it, and
    /// [`consume`](ReplyQueue::consume)s only what the completion reports
    /// written — a short write leaves the cursor mid-chunk, exactly like a
    /// short `writev` on the readiness path. Returns bytes copied.
    pub fn peek(&self, out: &mut Vec<u8>, max: usize) -> usize {
        let mut want = max.min(self.pending);
        let copied = want;
        let mut front_pos = self.front_pos;
        for seg in self.segs.iter() {
            if want == 0 {
                break;
            }
            let bytes = &seg.as_bytes()[front_pos..];
            front_pos = 0;
            let take = bytes.len().min(want);
            out.extend_from_slice(&bytes[..take]);
            want -= take;
        }
        copied
    }

    /// Advance the cursor past `n` bytes a completion reported written,
    /// retiring fully consumed segments into `pool`. `n` beyond `pending`
    /// is clamped (a completion can never write bytes that were not
    /// staged, but defensive callers need not pre-check).
    pub fn consume(&mut self, n: usize, pool: &mut HeadPool) {
        self.advance(n.min(self.pending), pool);
    }

    /// One vectored write of everything staged (up to [`MAX_IOVECS`]
    /// segments), resuming from the cursor. Returns the byte count the
    /// kernel accepted; `Ok(0)` only when the queue was already empty.
    ///
    /// Callers loop: non-blocking sockets stop on `WouldBlock` (re-arm for
    /// writability), blocking sockets stop when the queue drains.
    pub fn write_to<W: Write>(&mut self, w: &mut W, pool: &mut HeadPool) -> io::Result<usize> {
        if self.pending == 0 {
            return Ok(0);
        }
        let mut iov = [IoSlice::new(&[]); MAX_IOVECS];
        let mut n = 0;
        for seg in self.segs.iter().take(MAX_IOVECS) {
            let bytes = seg.as_bytes();
            // The cursor only ever rests inside the front segment.
            let bytes = if n == 0 { &bytes[self.front_pos..] } else { bytes };
            iov[n] = IoSlice::new(bytes);
            n += 1;
        }
        let written = w.write_vectored(&iov[..n])?;
        self.advance(written, pool);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentStore;
    use desim::Rng;
    use workload::{FileId, FileSet, SurgeConfig};

    fn store() -> ContentStore {
        let mut rng = Rng::new(9);
        let fs = FileSet::build(
            &SurgeConfig {
                num_files: 10,
                tail_prob: 0.0,
                ..SurgeConfig::default()
            },
            &mut rng,
        );
        ContentStore::from_fileset(&fs)
    }

    /// A writer that accepts at most `limit` bytes per call — drives the
    /// cursor through every partial-write landing spot, including mid-head
    /// and mid-body.
    struct LimitedWriter {
        out: Vec<u8>,
        limit: usize,
    }

    impl Write for LimitedWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.limit);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
        // Default write_vectored delegates to write() on the first
        // non-empty buffer, which is exactly the partial-write shape we
        // want to exercise.
    }

    fn drain_through(queue: &mut ReplyQueue, pool: &mut HeadPool, limit: usize) -> Vec<u8> {
        let mut w = LimitedWriter {
            out: Vec::new(),
            limit,
        };
        while !queue.is_empty() {
            let n = queue.write_to(&mut w, pool).expect("infallible writer");
            assert!(n > 0, "no progress");
        }
        w.out
    }

    /// Reference rendering: the old copying path (head bytes then body
    /// bytes appended into one Vec).
    fn reference(head: &[u8], body: &[u8]) -> Vec<u8> {
        let mut v = head.to_vec();
        v.extend_from_slice(body);
        v
    }

    #[test]
    fn staged_bytes_identical_to_copying_path() {
        let s = store();
        for limit in [1, 3, 7, 1024, usize::MAX] {
            let mut q = ReplyQueue::new();
            let mut pool = HeadPool::new();
            let head = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n".to_vec();
            let body = s.body_slice(FileId(3));
            let expect = reference(&head, body.as_bytes());
            q.push_head(head, &mut pool);
            q.push_body(body);
            assert_eq!(q.pending(), expect.len());
            let got = drain_through(&mut q, &mut pool, limit);
            assert_eq!(got, expect, "limit {limit}");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn cursor_survives_mid_head_and_mid_body_landings() {
        let s = store();
        let head = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        let body = s.body_slice(FileId(1));
        let expect = reference(&head, body.as_bytes());
        // limit 1: every single byte boundary is a landing spot, so the
        // cursor provably rests mid-head and mid-body along the way.
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        q.push_head(head, &mut pool);
        q.push_body(body);
        let got = drain_through(&mut q, &mut pool, 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn pipelined_replies_coalesce_and_stay_ordered() {
        let s = store();
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        let mut expect = Vec::new();
        for id in [0u32, 1, 2, 3, 4] {
            let head = format!("HEAD-{id}\r\n\r\n").into_bytes();
            let body = s.body_slice(FileId(id));
            expect.extend_from_slice(&head);
            expect.extend_from_slice(body.as_bytes());
            q.push_head(head, &mut pool);
            q.push_body(body);
        }
        // More than MAX_IOVECS segments would also work — just more calls.
        let got = drain_through(&mut q, &mut pool, 37);
        assert_eq!(got, expect);
    }

    #[test]
    fn deep_queues_exceeding_max_iovecs_drain_completely() {
        let s = store();
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        let mut expect = Vec::new();
        for i in 0..(MAX_IOVECS * 2 + 3) {
            let head = format!("H{i}|").into_bytes();
            let body = s.body_slice(FileId((i % 10) as u32));
            expect.extend_from_slice(&head);
            expect.extend_from_slice(body.as_bytes());
            q.push_head(head, &mut pool);
            q.push_body(body);
        }
        let got = drain_through(&mut q, &mut pool, usize::MAX);
        assert_eq!(got, expect);
    }

    #[test]
    fn head_buffers_are_recycled_not_reallocated() {
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"first response head");
        let cap_hint = buf.capacity();
        q.push_head(buf, &mut pool);
        assert_eq!(pool.spare_count(), 0);
        let _ = drain_through(&mut q, &mut pool, usize::MAX);
        // The drained head comes back to the worker pool, cleared but with
        // its allocation intact.
        assert_eq!(pool.spare_count(), 1);
        let again = pool.take();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap_hint);
    }

    #[test]
    fn pool_is_shared_across_queues_and_bounded() {
        // The point of the worker-level pool: buffers retired by one
        // connection serve the next, and an idle queue holds none.
        let mut pool = HeadPool::new();
        let mut q1 = ReplyQueue::new();
        q1.push_head(b"reply-1".to_vec(), &mut pool);
        let _ = drain_through(&mut q1, &mut pool, usize::MAX);
        assert_eq!(pool.spare_count(), 1);
        let mut q2 = ReplyQueue::new();
        let reused = pool.take();
        assert_eq!(pool.spare_count(), 0);
        q2.push_head(reused, &mut pool); // empty: straight back to the pool
        assert_eq!(pool.spare_count(), 1);
        // The cap bounds pool growth no matter how many heads retire.
        for _ in 0..200 {
            pool.give(Vec::with_capacity(8));
        }
        assert!(pool.spare_count() <= 64, "pool must stay bounded");
    }

    /// Drain via the completion-backend path: peek a chunk, pretend the
    /// "kernel" completed only part of it, consume that part, repeat. The
    /// chunk and completion sizes walk every misalignment between peeked
    /// spans and consumed spans.
    fn drain_completion_style(
        queue: &mut ReplyQueue,
        pool: &mut HeadPool,
        mut next_len: impl FnMut(usize) -> usize,
    ) -> Vec<u8> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        while !queue.is_empty() {
            scratch.clear();
            let chunk = next_len(queue.pending()).max(1);
            let peeked = queue.peek(&mut scratch, chunk);
            assert_eq!(peeked, scratch.len());
            assert!(peeked > 0, "pending queue must yield bytes");
            // Short completion: the op wrote only a prefix of the chunk.
            let wrote = next_len(peeked).max(1).min(peeked);
            out.extend_from_slice(&scratch[..wrote]);
            queue.consume(wrote, pool);
        }
        out
    }

    #[test]
    fn peek_consume_matches_writev_path_under_arbitrary_chunking() {
        let s = store();
        let mut lcg = 0x2545_F491u64;
        let mut rand = move |cap: usize| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((lcg >> 33) as usize % cap.max(1)) + 1
        };
        for trial in 0..8 {
            let mut q = ReplyQueue::new();
            let mut pool = HeadPool::new();
            let mut expect = Vec::new();
            for id in 0..5u32 {
                let head = format!("HEAD-{trial}-{id}\r\n\r\n").into_bytes();
                let body = s.body_slice(FileId(id));
                expect.extend_from_slice(&head);
                expect.extend_from_slice(body.as_bytes());
                q.push_head(head, &mut pool);
                q.push_body(body);
            }
            let got = drain_completion_style(&mut q, &mut pool, &mut rand);
            assert_eq!(got, expect, "trial {trial}");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_does_not_advance_the_cursor() {
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        q.push_head(b"0123456789".to_vec(), &mut pool);
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(q.peek(&mut a, 4), 4);
        assert_eq!(q.peek(&mut b, 4), 4);
        assert_eq!(a, b, "repeated peeks see the same front bytes");
        assert_eq!(q.pending(), 10);
        // Only consume moves the window.
        q.consume(4, &mut pool);
        let mut c = Vec::new();
        assert_eq!(q.peek(&mut c, 16), 6);
        assert_eq!(c, b"456789");
    }

    #[test]
    fn peek_spans_segment_boundaries_and_consume_recycles_heads() {
        let s = store();
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        let head = b"HH".to_vec();
        let body = s.body_slice(FileId(2));
        let mut expect = head.clone();
        expect.extend_from_slice(body.as_bytes());
        q.push_head(head, &mut pool);
        q.push_body(body);
        // One peek crossing the head/body boundary.
        let mut out = Vec::new();
        assert_eq!(q.peek(&mut out, 10), 10);
        assert_eq!(out, expect[..10]);
        // Consuming past the head retires it into the pool.
        q.consume(10, &mut pool);
        assert_eq!(pool.spare_count(), 1);
        // Over-consume clamps at pending.
        let left = q.pending();
        q.consume(left + 1000, &mut pool);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_queue_writes_nothing() {
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        let mut w = LimitedWriter {
            out: Vec::new(),
            limit: 1024,
        };
        assert_eq!(q.write_to(&mut w, &mut pool).unwrap(), 0);
        assert!(w.out.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn head_only_replies_flush() {
        // 304/404/HEAD responses have no body segment at all.
        let mut q = ReplyQueue::new();
        let mut pool = HeadPool::new();
        q.push_head(b"HTTP/1.1 304 Not Modified\r\n\r\n".to_vec(), &mut pool);
        q.push_head(b"HTTP/1.1 404 Not Found\r\n\r\n".to_vec(), &mut pool);
        let got = drain_through(&mut q, &mut pool, 5);
        assert_eq!(
            got,
            b"HTTP/1.1 304 Not Modified\r\n\r\nHTTP/1.1 404 Not Found\r\n\r\n".to_vec()
        );
    }
}
