//! Incremental HTTP/1.1 request parsing.
//!
//! The servers read whatever the socket yields and feed it to
//! [`RequestParser::parse`], which returns complete requests one at a time
//! — the mechanism that makes persistent connections and pipelining work:
//! bytes of the next request simply stay in the buffer. The parser is
//! defensive (never panics on arbitrary bytes; property-tested) and bounds
//! line/header sizes so a hostile peer cannot balloon memory.

use crate::buffer::ReadBuf;
use std::fmt;

/// Supported request methods (the study serves static GETs; HEAD comes free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Head,
    /// Anything else — surfaced so servers can answer 501.
    Other,
}

impl Method {
    fn from_bytes(b: &[u8]) -> Method {
        match b {
            b"GET" => Method::Get,
            b"HEAD" => Method::Head,
            _ => Method::Other,
        }
    }
}

/// HTTP version of the request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    Http10,
    Http11,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: Method,
    pub target: String,
    pub version: Version,
    /// Lower-cased header names with raw values, in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// Look up a header by (case-insensitive) name. Stored names are
    /// already lower-cased; comparing case-insensitively (instead of
    /// lower-casing `name` into a fresh `String`) keeps this lookup — on
    /// the per-request hot path — allocation-free.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should persist after this request
    /// (HTTP/1.1 default keep-alive, HTTP/1.0 opt-in).
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        match self.version {
            Version::Http11 => !conn.eq_ignore_ascii_case("close"),
            Version::Http10 => conn.eq_ignore_ascii_case("keep-alive"),
        }
    }
}

/// Why parsing failed (the connection should answer 400 and close).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Request line or a header exceeded the per-line limit.
    LineTooLong,
    /// More headers than the configured bound.
    TooManyHeaders,
    /// Malformed request line.
    BadRequestLine,
    /// Malformed header.
    BadHeader,
    /// Unsupported HTTP version.
    BadVersion,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::LineTooLong => "line too long",
            ParseError::TooManyHeaders => "too many headers",
            ParseError::BadRequestLine => "bad request line",
            ParseError::BadHeader => "bad header",
            ParseError::BadVersion => "bad http version",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

impl Default for Request {
    fn default() -> Request {
        Request {
            method: Method::Other,
            target: String::new(),
            version: Version::Http11,
            headers: Vec::new(),
        }
    }
}

/// Outcome of a parse attempt.
#[derive(Debug, PartialEq)]
pub enum ParseOutcome {
    /// A complete request was consumed from the buffer.
    Complete(Request),
    /// More bytes are needed.
    Incomplete,
    /// The stream is corrupt; close after responding 400.
    Error(ParseError),
}

/// Parser limits.
#[derive(Debug, Clone, Copy)]
pub struct ParserLimits {
    pub max_line: usize,
    pub max_headers: usize,
}

impl Default for ParserLimits {
    fn default() -> Self {
        ParserLimits {
            max_line: 8192,
            max_headers: 100,
        }
    }
}

/// A worker-owned free list of [`Request`] scratch objects. Parsing refills
/// a pooled request's strings in place, so a steady-state worker parses
/// every request — across *all* of its connections — without allocating,
/// while an idle connection pins no parser scratch of its own. (An earlier
/// design kept one spare request inside every parser; at a million
/// mostly-idle connections those per-connection spares are dead weight.)
#[derive(Debug, Default)]
pub struct RequestPool {
    spares: Vec<Request>,
}

/// Cap on pooled request scratch kept per pool (i.e. per worker thread) —
/// enough for the deepest plausible pipelined burst in flight at once.
const MAX_SPARE_REQUESTS: usize = 64;

impl RequestPool {
    pub fn new() -> RequestPool {
        RequestPool::default()
    }

    /// A scratch request, recycled when possible. The next parse clears and
    /// refills its fields in place.
    pub fn take(&mut self) -> Request {
        self.spares.pop().unwrap_or_default()
    }

    /// Hand a served request back so its allocations (target string,
    /// header names/values) are reused by a later parse.
    pub fn give(&mut self, req: Request) {
        if self.spares.len() < MAX_SPARE_REQUESTS {
            self.spares.push(req);
        }
    }

    /// Requests currently parked in the pool.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }
}

/// Incremental request parser with an internal accumulation buffer.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: ReadBuf,
    limits: ParserLimits,
    /// A served [`Request`] handed back via [`RequestParser::recycle`]:
    /// scratch for the self-contained [`RequestParser::parse`]. The
    /// servers use [`RequestParser::parse_pooled`] instead, which draws
    /// scratch from a worker-wide [`RequestPool`] and leaves this empty.
    spare: Option<Request>,
}

/// Outcome of one parse step with the scratch request threaded through, so
/// the caller-side wrappers can route the scratch back to its free list in
/// every case.
enum Parsed {
    Complete(Request),
    Incomplete(Request),
    Error(ParseError, Request),
}

impl RequestParser {
    pub fn new() -> Self {
        RequestParser {
            // The accumulation buffer starts empty and only materialises on
            // the first feed: a connection that never sends a byte (most of
            // a million-connection idle population at any instant) costs no
            // parser heap at all.
            buf: ReadBuf::new(),
            limits: ParserLimits::default(),
            spare: None,
        }
    }

    pub fn with_limits(limits: ParserLimits) -> Self {
        RequestParser {
            buf: ReadBuf::new(),
            limits,
            spare: None,
        }
    }

    /// Hand a served request back so its allocations (target string,
    /// header names/values) are reused by the next [`RequestParser::parse`].
    pub fn recycle(&mut self, req: Request) {
        self.spare = Some(req);
    }

    /// Feed raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet parsed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to parse the next complete request off the front of the buffer,
    /// using the parser's own spare request as scratch (self-contained;
    /// servers prefer [`RequestParser::parse_pooled`]).
    pub fn parse(&mut self) -> ParseOutcome {
        let req = self.spare.take().unwrap_or_default();
        match self.parse_step(req) {
            Parsed::Complete(req) => ParseOutcome::Complete(req),
            Parsed::Incomplete(req) => {
                self.spare = Some(req);
                ParseOutcome::Incomplete
            }
            Parsed::Error(e, req) => {
                self.spare = Some(req);
                ParseOutcome::Error(e)
            }
        }
    }

    /// Like [`RequestParser::parse`], but scratch comes from (and returns
    /// to) a worker-wide [`RequestPool`] shared by every connection the
    /// worker serves.
    pub fn parse_pooled(&mut self, pool: &mut RequestPool) -> ParseOutcome {
        let req = pool.take();
        match self.parse_step(req) {
            Parsed::Complete(req) => ParseOutcome::Complete(req),
            Parsed::Incomplete(req) => {
                pool.give(req);
                ParseOutcome::Incomplete
            }
            Parsed::Error(e, req) => {
                pool.give(req);
                ParseOutcome::Error(e)
            }
        }
    }

    fn parse_step(&mut self, mut req: Request) -> Parsed {
        let data = self.buf.as_slice();
        // Find the end of the header block.
        let Some(head_end) = find_double_crlf(data) else {
            // Guard against an unbounded header block.
            if data.len() > self.limits.max_line * (self.limits.max_headers + 1) {
                return Parsed::Error(ParseError::LineTooLong, req);
            }
            return Parsed::Incomplete(req);
        };
        let head = &data[..head_end];
        let result = parse_head_into(head, self.limits, &mut req);
        // Consume the head plus its terminating CRLFCRLF regardless of
        // outcome; on error the connection dies anyway.
        let consumed = head_end + 4;
        self.buf.consume(consumed);
        match result {
            Ok(()) => Parsed::Complete(req),
            // Keep the scratch allocations; the refill clears them.
            Err(e) => Parsed::Error(e, req),
        }
    }
}

/// Locate the `\r\n\r\n` separating head from body. Returns the index of
/// its first byte.
fn find_double_crlf(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the head block into `req`, reusing its existing allocations
/// (target string, header name/value strings) wherever possible.
fn parse_head_into(head: &[u8], limits: ParserLimits, req: &mut Request) -> Result<(), ParseError> {
    let mut lines = head.split(|&b| b == b'\n').map(|l| {
        // Tolerate both \r\n (after split) and bare \n.
        if l.last() == Some(&b'\r') {
            &l[..l.len() - 1]
        } else {
            l
        }
    });
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    if request_line.len() > limits.max_line {
        return Err(ParseError::LineTooLong);
    }
    let mut parts = request_line.split(|&b| b == b' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = parts.next().ok_or(ParseError::BadRequestLine)?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequestLine);
    }
    let version = match version {
        b"HTTP/1.1" => Version::Http11,
        b"HTTP/1.0" => Version::Http10,
        _ => return Err(ParseError::BadVersion),
    };
    if target.is_empty() || !target.iter().all(|&b| (0x21..0x7f).contains(&b)) {
        return Err(ParseError::BadRequestLine);
    }
    req.method = Method::from_bytes(method);
    req.version = version;
    set_lossy(&mut req.target, target);

    let mut n = 0;
    for line in lines {
        if line.is_empty() {
            continue; // trailing empty segment before the final CRLF
        }
        if line.len() > limits.max_line {
            return Err(ParseError::LineTooLong);
        }
        if n >= limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(ParseError::BadHeader)?;
        let (name, rest) = line.split_at(colon);
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(ParseError::BadHeader);
        }
        let value = trim_ows(&rest[1..]);
        if n == req.headers.len() {
            req.headers.push((String::new(), String::new()));
        }
        let (name_dst, value_dst) = &mut req.headers[n];
        name_dst.clear();
        // Token bytes are ASCII; lower-case while copying.
        for &b in name {
            name_dst.push(b.to_ascii_lowercase() as char);
        }
        set_lossy(value_dst, value);
        n += 1;
    }
    req.headers.truncate(n);
    Ok(())
}

/// `dst = lossy-UTF-8(src)` without allocating on the (overwhelmingly
/// common) valid-UTF-8 path.
fn set_lossy(dst: &mut String, src: &[u8]) {
    dst.clear();
    match std::str::from_utf8(src) {
        Ok(s) => dst.push_str(s),
        Err(_) => dst.push_str(&String::from_utf8_lossy(src)),
    }
}

fn trim_ows(mut v: &[u8]) -> &[u8] {
    while let Some((&b, rest)) = v.split_first() {
        if b == b' ' || b == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    while let Some((&b, rest)) = v.split_last() {
        if b == b' ' || b == b'\t' {
            v = rest;
        } else {
            break;
        }
    }
    v
}

fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'
        | b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(input: &[u8]) -> ParseOutcome {
        let mut p = RequestParser::new();
        p.feed(input);
        p.parse()
    }

    #[test]
    fn simple_get() {
        let out = parse_one(b"GET /index.html HTTP/1.1\r\nHost: sut\r\n\r\n");
        let ParseOutcome::Complete(req) = out else {
            panic!("{out:?}");
        };
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/index.html");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("sut"));
        assert_eq!(req.header("HOST"), Some("sut"));
        assert!(req.keep_alive());
    }

    #[test]
    fn incremental_feeding() {
        let mut p = RequestParser::new();
        let full = b"GET /a HTTP/1.1\r\nHost: x\r\n\r\n";
        for chunk in full.chunks(3) {
            p.feed(chunk);
        }
        // All but the final chunk yield Incomplete, the final one Complete —
        // but here we fed everything, so one parse suffices.
        let ParseOutcome::Complete(req) = p.parse() else {
            panic!();
        };
        assert_eq!(req.target, "/a");
    }

    #[test]
    fn incomplete_until_blank_line() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nHost: x\r\n");
        assert_eq!(p.parse(), ParseOutcome::Incomplete);
        p.feed(b"\r\n");
        assert!(matches!(p.parse(), ParseOutcome::Complete(_)));
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut p = RequestParser::new();
        p.feed(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\nGET /3 HTTP/1.1\r\n\r\n");
        for expect in ["/1", "/2", "/3"] {
            let ParseOutcome::Complete(req) = p.parse() else {
                panic!("expected {expect}");
            };
            assert_eq!(req.target, expect);
        }
        assert_eq!(p.parse(), ParseOutcome::Incomplete);
    }

    #[test]
    fn http10_connection_semantics() {
        let ParseOutcome::Complete(r) = parse_one(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(!r.keep_alive());
        let ParseOutcome::Complete(r) =
            parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        else {
            panic!()
        };
        assert!(r.keep_alive());
        let ParseOutcome::Complete(r) =
            parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!()
        };
        assert!(!r.keep_alive());
    }

    #[test]
    fn bad_version_rejected() {
        assert_eq!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadVersion)
        );
        assert_eq!(
            parse_one(b"GET / POTATO\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadVersion)
        );
    }

    #[test]
    fn bad_request_lines_rejected() {
        assert_eq!(
            parse_one(b"GET\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadRequestLine)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1 EXTRA\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadRequestLine)
        );
    }

    #[test]
    fn header_without_colon_rejected() {
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nBroken header line\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadHeader)
        );
    }

    #[test]
    fn header_values_are_trimmed() {
        let ParseOutcome::Complete(r) =
            parse_one(b"GET / HTTP/1.1\r\nX-Pad:   spaced value \t\r\n\r\n")
        else {
            panic!()
        };
        assert_eq!(r.header("x-pad"), Some("spaced value"));
    }

    #[test]
    fn other_methods_surface_as_other() {
        let ParseOutcome::Complete(r) = parse_one(b"BREW /pot HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert_eq!(r.method, Method::Other);
        let ParseOutcome::Complete(r) = parse_one(b"HEAD / HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert_eq!(r.method, Method::Head);
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            req.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        req.extend_from_slice(b"\r\n");
        assert_eq!(
            parse_one(&req),
            ParseOutcome::Error(ParseError::TooManyHeaders)
        );
    }

    #[test]
    fn oversized_headerless_stream_errors_instead_of_ballooning() {
        let mut p = RequestParser::with_limits(ParserLimits {
            max_line: 64,
            max_headers: 4,
        });
        p.feed(&vec![b'A'; 64 * 5 + 1]);
        assert_eq!(p.parse(), ParseOutcome::Error(ParseError::LineTooLong));
    }

    #[test]
    fn control_bytes_in_target_rejected() {
        assert_eq!(
            parse_one(b"GET /\x01evil HTTP/1.1\r\n\r\n"),
            ParseOutcome::Error(ParseError::BadRequestLine)
        );
    }
}
