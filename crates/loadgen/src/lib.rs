//! `loadgen` — a live httperf-style workload generator.
//!
//! Drives either real server over loopback with the same session semantics
//! the simulation uses (and that the paper configured httperf with):
//! emulated clients running back-to-back sessions of ~6.5 requests in
//! pipelined bursts over persistent connections, heavy-tailed think times,
//! and a client socket timeout covering connect and reply progress. Errors
//! are classified exactly as httperf does: client timeouts vs connection
//! resets vs refusals.
//!
//! Think times can be scaled down (`think_scale`) so a test exercises the
//! full session machinery in hundreds of milliseconds.

pub mod adversary;

use desim::Rng;
use metrics::{ClientError, ErrorCounters, Histogram};
use obs::{EndReason, Obs, ObsConfig, Span, Stage};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use workload::{FileSet, SessionConfig, SessionPlan};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub target: SocketAddr,
    /// Concurrent emulated clients (one thread each).
    pub clients: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    pub session: SessionConfig,
    /// Client socket timeout (httperf's 10 s; scale down for tests).
    pub client_timeout: Duration,
    /// Multiplier on think times (1.0 = faithful; tests use ~0.01).
    pub think_scale: f64,
    pub seed: u64,
    /// Typed observability capture (connect spans, per-reply stage
    /// breakdowns). `None` (the default) records nothing and costs one
    /// branch per hook — mirrors `TestbedConfig::obs` on the sim side.
    pub obs: Option<ObsConfig>,
    /// Opt-in retry with capped exponential backoff + jitter after a failed
    /// session (connect error, refusal, reset, timeout). `None` (the
    /// default) preserves the faithful httperf behaviour: fail, count, move
    /// on. Mirrors `ClientConfig::retry` on the sim side.
    pub retry: Option<faults::RetryPolicy>,
    /// Sibling targets for balancer-style failover: when a session fails
    /// and the shared `failover_budget` still has units, the client retries
    /// immediately against the next sibling (round-robin) instead of
    /// backing off against the dead primary, and sticks with it until it
    /// too fails. Empty (the default) disables failover.
    pub failover: Vec<SocketAddr>,
    /// Explicit per-run failover budget shared by every client thread.
    /// Each sibling retry draws one unit; at zero, failure handling falls
    /// back to the ordinary `retry`/pacing path. Keeps failover retries
    /// bounded and accounted apart from client-initiated retries.
    pub failover_budget: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            target: SocketAddr::from(([127, 0, 0, 1], 0)),
            clients: 8,
            duration: Duration::from_secs(2),
            session: SessionConfig::default(),
            client_timeout: Duration::from_secs(10),
            think_scale: 1.0,
            seed: 0x010A_D6E4,
            obs: None,
            retry: None,
            failover: Vec::new(),
            failover_budget: 0,
        }
    }
}

/// Aggregated measurement across all emulated clients.
#[derive(Debug)]
pub struct LoadReport {
    pub replies: u64,
    pub requests: u64,
    pub bytes_received: u64,
    pub sessions_completed: u64,
    pub sessions_aborted: u64,
    /// Backoff-delayed re-attempts taken under `LoadConfig::retry` (counted
    /// separately — never folded into `requests` or the error counters).
    pub retries: u64,
    /// Immediate sibling re-attempts drawn from `failover_budget` —
    /// balancer-failover retries, reported apart from the client-initiated
    /// `retries` so the two recovery mechanisms stay distinguishable.
    pub failover_retries: u64,
    pub errors: ErrorCounters,
    /// Per-reply response time, µs.
    pub response_time_us: Histogram,
    /// Connection establishment time, µs.
    pub connect_time_us: Histogram,
    pub wall: Duration,
    /// Merged per-thread observability capture (empty unless
    /// `LoadConfig::obs` was set). Timestamps are wall nanoseconds since
    /// the run started — the live analogue of the simulator's virtual
    /// clock, so both layers export the same JSONL schema.
    pub obs: Obs,
}

impl LoadReport {
    fn new() -> LoadReport {
        LoadReport {
            replies: 0,
            requests: 0,
            bytes_received: 0,
            sessions_completed: 0,
            sessions_aborted: 0,
            retries: 0,
            failover_retries: 0,
            errors: ErrorCounters::default(),
            response_time_us: Histogram::default_precision(),
            connect_time_us: Histogram::default_precision(),
            wall: Duration::ZERO,
            obs: Obs::disabled(),
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.replies += other.replies;
        self.requests += other.requests;
        self.bytes_received += other.bytes_received;
        self.sessions_completed += other.sessions_completed;
        self.sessions_aborted += other.sessions_aborted;
        self.retries += other.retries;
        self.failover_retries += other.failover_retries;
        self.errors.merge(&other.errors);
        self.response_time_us.merge(&other.response_time_us);
        self.connect_time_us.merge(&other.connect_time_us);
        self.obs.merge(other.obs);
    }

    /// Render an httperf-style summary block.
    pub fn render(&self) -> String {
        format!(
            "replies: {} ({:.0}/s)  requests: {}  bytes: {}\n\
             response time: mean {:.2} ms, p50 {:.2} ms, p99 {:.2} ms\n\
             connect time:  mean {:.2} ms\n\
             sessions: {} completed, {} aborted ({} retries, {} failover)\n\
             errors: {} client-timeout, {} connection-reset, {} refused, {} socket",
            self.replies,
            self.throughput_rps(),
            self.requests,
            self.bytes_received,
            self.response_time_us.mean() / 1000.0,
            self.response_time_us.quantile(0.5) as f64 / 1000.0,
            self.response_time_us.quantile(0.99) as f64 / 1000.0,
            self.connect_time_us.mean() / 1000.0,
            self.sessions_completed,
            self.sessions_aborted,
            self.retries,
            self.failover_retries,
            self.errors.client_timeout,
            self.errors.connection_reset,
            self.errors.connection_refused,
            self.errors.socket_error,
        )
    }

    /// Replies per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.replies as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Run the generator against a live server. Blocks for `cfg.duration`.
pub fn run(cfg: &LoadConfig, files: &FileSet) -> LoadReport {
    assert!(cfg.clients > 0);
    let start = Instant::now();
    let deadline = start + cfg.duration;
    // One failover budget for the whole run, shared by every client thread.
    let budget = std::sync::atomic::AtomicU64::new(cfg.failover_budget);
    let budget = &budget;
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let cfg = cfg.clone();
                scope.spawn(move || client_loop(&cfg, files, i as u64, start, deadline, budget))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut total = LoadReport::new();
    if let Some(oc) = &cfg.obs {
        total.obs = Obs::new(oc);
    }
    for r in reports {
        total.merge(r);
    }
    total.wall = start.elapsed();
    total
}

/// Wall nanoseconds since the run epoch — the live layer's clock.
fn ns_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// What ended a burst exchange.
enum ExchangeEnd {
    Ok,
    Timeout,
    Reset,
    OtherError,
}

/// After a failed session: sleep the retry policy's capped-exponential
/// backoff (with jitter) and count the retry, or — with no policy — just the
/// fixed pacing delay `fallback` the faithful path always used.
fn backoff_or_pace(
    cfg: &LoadConfig,
    report: &mut LoadReport,
    attempt: &mut u32,
    rng: &mut Rng,
    deadline: Instant,
    fallback: Duration,
) {
    let wait = match &cfg.retry {
        Some(policy) if *attempt < policy.max_retries => {
            report.retries += 1;
            let ns = policy.backoff_ns(*attempt, rng.f64());
            *attempt += 1;
            Duration::from_nanos(ns)
        }
        Some(_) => {
            // Retry budget exhausted: give up on this streak and start the
            // next session (if any) from a cold backoff curve.
            *attempt = 0;
            fallback
        }
        None => fallback,
    };
    let wait = wait.min(deadline.saturating_duration_since(Instant::now()));
    if !wait.is_zero() {
        std::thread::sleep(wait);
    }
}

fn classify(e: &io::Error) -> ExchangeEnd {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ExchangeEnd::Timeout,
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::ConnectionAborted => ExchangeEnd::Reset,
        _ => ExchangeEnd::OtherError,
    }
}

/// Pick the failover sibling for a failed session, drawing one unit from
/// the run's shared budget — `None` when failover is off or the budget is
/// spent, in which case ordinary retry/pacing applies.
fn failover_target(cfg: &LoadConfig, budget: &AtomicU64, next: &mut usize) -> Option<SocketAddr> {
    if cfg.failover.is_empty() {
        return None;
    }
    let mut cur = budget.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return None;
        }
        match budget.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    let t = cfg.failover[*next % cfg.failover.len()];
    *next += 1;
    Some(t)
}

fn client_loop(
    cfg: &LoadConfig,
    files: &FileSet,
    id: u64,
    epoch: Instant,
    deadline: Instant,
    budget: &AtomicU64,
) -> LoadReport {
    let mut report = LoadReport::new();
    if let Some(oc) = &cfg.obs {
        report.obs = Obs::new(oc);
    }
    let mut rng = Rng::new(cfg.seed ^ 0x5E55_0000).split_labeled(id);
    let mut scratch = vec![0u8; 64 * 1024];
    // Connection ids unique across client threads so merged captures never
    // collide: high bits carry the thread id.
    let mut conn_seq: u64 = 0;
    // Consecutive failed sessions (drives the backoff curve under
    // `cfg.retry`); reset by any successful connect.
    let mut retry_attempt: u32 = 0;
    // Where this client currently sends: the primary until a failed session
    // fails over to a sibling (stays there until that sibling fails too).
    let mut target = cfg.target;
    let mut next_sibling = id as usize;
    'sessions: while Instant::now() < deadline {
        let plan = SessionPlan::generate(&cfg.session, files, &mut rng);
        conn_seq += 1;
        let conn = (id << 32) | conn_seq;
        let replies_before = report.replies;
        // Connect (measured).
        let t0 = Instant::now();
        let remaining = deadline.saturating_duration_since(t0);
        if remaining.is_zero() {
            break;
        }
        let stream = TcpStream::connect_timeout(
            &target,
            cfg.client_timeout.min(remaining.max(Duration::from_millis(10))),
        );
        let mut stream = match stream {
            Ok(s) => s,
            Err(e) => {
                let end = classify(&e);
                match end {
                    ExchangeEnd::Timeout => report.errors.record(ClientError::ClientTimeout),
                    // Any hard failure *during connect* — ECONNREFUSED, or a
                    // RST racing the handshake (the shed watermark's
                    // SO_LINGER(0) close) — is the server turning us away at
                    // the door: conn-refused, never conn-reset.
                    _ => report.errors.record(ClientError::ConnectionRefused),
                }
                if report.obs.on() {
                    // A refused/failed connect still leaves a typed record:
                    // a one-stage ConnectWait request — same shape the
                    // simulator emits for an explicit refusal.
                    let reason = match end {
                        ExchangeEnd::Timeout => EndReason::Timeout,
                        _ => EndReason::Refused,
                    };
                    let t = t0.saturating_duration_since(epoch).as_nanos() as u64;
                    report.obs.requests.begin(conn, t, Stage::ConnectWait);
                    report.obs.requests.finish_next(conn, ns_since(epoch), reason);
                }
                report.sessions_aborted += 1;
                if let Some(sib) = failover_target(cfg, budget, &mut next_sibling) {
                    report.failover_retries += 1;
                    target = sib;
                    continue; // immediate retry against the sibling
                }
                backoff_or_pace(
                    cfg,
                    &mut report,
                    &mut retry_attempt,
                    &mut rng,
                    deadline,
                    Duration::from_millis(20),
                );
                continue;
            }
        };
        retry_attempt = 0;
        report
            .connect_time_us
            .record(t0.elapsed().as_micros() as u64);
        if report.obs.on() {
            // Same interval connect_time_us measures, as a typed span.
            report.obs.spans.push(Span {
                conn,
                req: None,
                stage: Stage::ConnectWait,
                start_ns: t0.saturating_duration_since(epoch).as_nanos() as u64,
                end_ns: ns_since(epoch),
            });
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(cfg.client_timeout));

        for (bi, burst) in plan.bursts.iter().enumerate() {
            if bi > 0 {
                let think = burst.think_before.as_secs_f64() * cfg.think_scale;
                let think = Duration::from_secs_f64(think);
                if Instant::now() + think >= deadline {
                    report.sessions_aborted += 1;
                    continue 'sessions;
                }
                std::thread::sleep(think);
            }
            let end = exchange_burst(
                files,
                &mut stream,
                conn,
                epoch,
                &burst.files,
                &mut scratch,
                &mut report,
            );
            // A reset before the very first reply of a session is the
            // accept-path refusing us (shed watermark's SO_LINGER(0) close,
            // or a drain racing the accept): classify it as a refusal, not
            // a mid-stream reset.
            let refused_at_door =
                matches!(end, ExchangeEnd::Reset) && bi == 0 && report.replies == replies_before;
            if report.obs.on() {
                // Close out whatever the burst left in flight with the
                // EndReason the error classification implies.
                let reason = match end {
                    ExchangeEnd::Ok => None,
                    ExchangeEnd::Timeout => Some(EndReason::Timeout),
                    ExchangeEnd::Reset if refused_at_door => Some(EndReason::Refused),
                    ExchangeEnd::Reset => Some(EndReason::Reset),
                    ExchangeEnd::OtherError => Some(EndReason::Closed),
                };
                if let Some(r) = reason {
                    report.obs.requests.finish_all(conn, ns_since(epoch), r);
                }
            }
            match end {
                ExchangeEnd::Ok => {}
                ExchangeEnd::Timeout => {
                    report.errors.record(ClientError::ClientTimeout);
                    report.sessions_aborted += 1;
                    if let Some(sib) = failover_target(cfg, budget, &mut next_sibling) {
                        report.failover_retries += 1;
                        target = sib;
                        continue 'sessions;
                    }
                    backoff_or_pace(
                        cfg,
                        &mut report,
                        &mut retry_attempt,
                        &mut rng,
                        deadline,
                        Duration::ZERO,
                    );
                    continue 'sessions;
                }
                ExchangeEnd::Reset => {
                    report.errors.record(if refused_at_door {
                        ClientError::ConnectionRefused
                    } else {
                        ClientError::ConnectionReset
                    });
                    report.sessions_aborted += 1;
                    if let Some(sib) = failover_target(cfg, budget, &mut next_sibling) {
                        report.failover_retries += 1;
                        target = sib;
                        continue 'sessions;
                    }
                    backoff_or_pace(
                        cfg,
                        &mut report,
                        &mut retry_attempt,
                        &mut rng,
                        deadline,
                        Duration::ZERO,
                    );
                    continue 'sessions;
                }
                ExchangeEnd::OtherError => {
                    report.errors.record(ClientError::SocketError);
                    report.sessions_aborted += 1;
                    if let Some(sib) = failover_target(cfg, budget, &mut next_sibling) {
                        report.failover_retries += 1;
                        target = sib;
                        continue 'sessions;
                    }
                    backoff_or_pace(
                        cfg,
                        &mut report,
                        &mut retry_attempt,
                        &mut rng,
                        deadline,
                        Duration::ZERO,
                    );
                    continue 'sessions;
                }
            }
        }
        report.sessions_completed += 1;
        // Connection closes on drop; the next session opens a fresh one.
    }
    report
}

/// Send one pipelined burst and read all its replies.
#[allow(clippy::too_many_arguments)]
fn exchange_burst(
    files: &FileSet,
    stream: &mut TcpStream,
    conn: u64,
    epoch: Instant,
    targets: &[workload::FileId],
    scratch: &mut [u8],
    report: &mut LoadReport,
) -> ExchangeEnd {
    // Pipelined request block.
    let mut out = Vec::with_capacity(targets.len() * 64);
    for f in targets {
        out.extend_from_slice(format!("GET /f/{} HTTP/1.1\r\nHost: sut\r\n\r\n", f.0).as_bytes());
    }
    let sent_at = Instant::now();
    if report.obs.on() {
        // Each pipelined request opens in Parse at the send instant —
        // identical semantics to the simulator's SendBurst hook, so the
        // breakdown totals are the same response time the histogram records.
        let t = sent_at.saturating_duration_since(epoch).as_nanos() as u64;
        for _ in targets {
            report.obs.requests.begin(conn, t, Stage::Parse);
        }
    }
    if let Err(e) = stream.write_all(&out) {
        return classify(&e);
    }
    report.requests += targets.len() as u64;

    // Read replies with Content-Length framing.
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut expected = targets.len();
    let expect_sizes: Vec<u64> = targets.iter().map(|&f| files.size_of(f)).collect();
    let mut idx = 0;
    // When the current reply's head became visible before its body finished
    // — the client-observable service/transfer boundary.
    let mut head_seen_ns: Option<u64> = None;
    while expected > 0 {
        // Parse as many complete replies as the buffer holds.
        loop {
            match httpcore::parse_response_head(&buf) {
                Some(Ok(head)) => {
                    let total = head.head_len + head.content_length;
                    if buf.len() < total {
                        if report.obs.on() && head_seen_ns.is_none() {
                            head_seen_ns = Some(ns_since(epoch));
                        }
                        break; // need more body bytes
                    }
                    report.replies += 1;
                    report.bytes_received += total as u64;
                    report
                        .response_time_us
                        .record(sent_at.elapsed().as_micros() as u64);
                    if report.obs.on() {
                        let done_ns = ns_since(epoch);
                        // Service ends when the head surfaced; Transfer
                        // carries the body tail. A reply arriving whole
                        // degenerates to a zero-width Transfer.
                        let head_ns = head_seen_ns.take().unwrap_or(done_ns);
                        report.obs.requests.mark_next(conn, Stage::Service, head_ns);
                        report.obs.requests.mark_next(conn, Stage::Transfer, done_ns);
                        report.obs.requests.finish_next(conn, done_ns, EndReason::Done);
                    }
                    if head.status == 200 {
                        debug_assert_eq!(
                            head.content_length as u64, expect_sizes[idx],
                            "reply size mismatch"
                        );
                    }
                    idx += 1;
                    expected -= 1;
                    buf.drain(..total);
                    if expected == 0 {
                        return ExchangeEnd::Ok;
                    }
                }
                Some(Err(_)) => return ExchangeEnd::OtherError,
                None => break,
            }
        }
        match stream.read(scratch) {
            Ok(0) => return ExchangeEnd::Reset, // server closed mid-burst
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return classify(&e),
        }
    }
    ExchangeEnd::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpcore::ContentStore;
    use std::sync::Arc;
    use workload::SurgeConfig;

    fn small_files() -> FileSet {
        let mut rng = Rng::new(3);
        FileSet::build(
            &SurgeConfig {
                num_files: 30,
                tail_prob: 0.0,
                body_mu: 7.0, // small files: fast tests
                ..SurgeConfig::default()
            },
            &mut rng,
        )
    }

    fn quick_cfg(target: SocketAddr) -> LoadConfig {
        LoadConfig {
            target,
            clients: 4,
            duration: Duration::from_millis(1200),
            session: SessionConfig::default(),
            client_timeout: Duration::from_secs(5),
            think_scale: 0.005,
            seed: 42,
            obs: None,
            retry: None,
            failover: Vec::new(),
            failover_budget: 0,
        }
    }

    #[test]
    fn drives_the_nio_server() {
        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = nioserver::NioServer::start(nioserver::NioConfig {
            workers: 2,
            backend: nioserver::BackendKind::from_env(),
            accept: nioserver::AcceptMode::from_env(),
            shed_watermark: None,
            lifecycle: httpcore::LifecyclePolicy::default(),
            content,
        })
        .unwrap();
        let report = run(&quick_cfg(server.addr()), &files);
        assert!(report.replies > 20, "replies {}", report.replies);
        assert!(report.sessions_completed > 0);
        assert_eq!(report.errors.connection_reset, 0, "nio never resets");
        assert!(report.throughput_rps() > 10.0);
        assert!(report.response_time_us.count() > 0);
        server.shutdown();
    }

    #[test]
    fn drives_the_pool_server() {
        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = poolserver::PoolServer::start(poolserver::PoolConfig {
            pool_size: 8,
            lifecycle: httpcore::LifecyclePolicy::default(),
            shed_watermark: None,
            content,
        })
        .unwrap();
        let report = run(&quick_cfg(server.addr()), &files);
        assert!(report.replies > 20, "replies {}", report.replies);
        assert!(report.sessions_completed > 0);
        server.shutdown();
    }

    #[test]
    fn counts_resets_against_short_idle_timeouts() {
        // Pool server with a 1 s idle timeout + unscaled multi-second think
        // times ⇒ the generator must observe connection resets, the live
        // analogue of figure 3(b).
        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = poolserver::PoolServer::start(poolserver::PoolConfig {
            pool_size: 8,
            lifecycle: httpcore::LifecyclePolicy {
                idle_timeout: Some(Duration::from_millis(300)),
                ..httpcore::LifecyclePolicy::default()
            },
            shed_watermark: None,
            content,
        })
        .unwrap();
        let cfg = LoadConfig {
            clients: 6,
            duration: Duration::from_secs(3),
            // Keep think times real enough to exceed the 300 ms timeout.
            think_scale: 1.0,
            client_timeout: Duration::from_secs(5),
            ..quick_cfg(server.addr())
        };
        let report = run(&cfg, &files);
        assert!(
            report.errors.connection_reset > 0,
            "expected resets: {:?}",
            report.errors
        );
        server.shutdown();
    }

    #[test]
    fn captures_breakdowns_and_gauges_against_live_server() {
        use obs::GaugeKind;
        use std::sync::atomic::AtomicBool;

        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = nioserver::NioServer::start(nioserver::NioConfig {
            workers: 2,
            backend: nioserver::BackendKind::from_env(),
            accept: nioserver::AcceptMode::from_env(),
            shed_watermark: None,
            lifecycle: httpcore::LifecyclePolicy::default(),
            content,
        })
        .unwrap();
        // Stats thread sampling the server's atomic registry in wall time —
        // the live counterpart of the simulator's virtual-time Ev::ObsSample.
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = obs::spawn_sampler(
            server.gauges(),
            obs::gauge::kinds_for(false),
            Duration::from_millis(5),
            4096,
            Arc::clone(&stop),
        );
        let mut cfg = quick_cfg(server.addr());
        cfg.obs = Some(obs::ObsConfig::default());
        let mut report = run(&cfg, &files);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        report.obs.gauges.merge(sampler.join().unwrap());

        assert!(report.obs.on());
        // Every reply produced a breakdown obeying the stage invariants.
        let completed = report.obs.requests.completed();
        assert!(!completed.is_empty());
        assert!(completed.len() as u64 >= report.replies);
        for b in completed {
            assert!(b.end_ns >= b.start_ns);
            assert_eq!(b.stage_sum_ns(), b.total_ns(), "{b:?}");
            assert_eq!(b.stages.first().map(|&(s, _)| s), Some(Stage::Parse));
        }
        // Connect spans mirror the connect-time histogram.
        assert!(report
            .obs
            .spans
            .spans()
            .any(|s| s.stage == Stage::ConnectWait && s.end_ns >= s.start_ns));
        // The sampler saw the server's connections while the run was live.
        assert!(!report.obs.gauges.is_empty());
        assert!(report.obs.gauges.samples().iter().all(|s| s.value >= 0.0));
        assert!(report.obs.gauges.peak(GaugeKind::OpenConns) >= 1.0);
        server.shutdown();
    }

    #[test]
    fn refused_connections_are_counted() {
        // Nobody listens on this port (bind, learn the port, drop).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let files = small_files();
        let cfg = LoadConfig {
            clients: 2,
            duration: Duration::from_millis(300),
            ..quick_cfg(addr)
        };
        let report = run(&cfg, &files);
        assert_eq!(report.replies, 0);
        assert!(report.errors.connection_refused > 0);
        assert!(report.sessions_aborted > 0);
        assert_eq!(report.retries, 0, "no retry policy, no retries");
    }

    #[test]
    fn retry_policy_backs_off_and_counts() {
        // Dead port + retry policy: each client burns its retry budget with
        // exponential pauses instead of hammering every 20 ms.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let files = small_files();
        let cfg = LoadConfig {
            clients: 2,
            duration: Duration::from_millis(500),
            retry: Some(faults::RetryPolicy {
                max_retries: 16,
                base_ns: 10_000_000, // 10 ms so the test stays fast
                cap_ns: 200_000_000,
                jitter_frac: 0.0,
            }),
            ..quick_cfg(addr)
        };
        let report = run(&cfg, &files);
        assert_eq!(report.replies, 0);
        assert!(report.retries > 0, "retries {}", report.retries);
        assert!(report.errors.connection_refused > 0);
        // Backoff pacing means far fewer attempts than the no-policy path's
        // 20 ms spin would produce in the same window.
        assert!(
            report.sessions_aborted < 25,
            "backoff not applied: {} aborts",
            report.sessions_aborted
        );
    }

    #[test]
    fn failover_draws_from_budget_and_is_counted_apart() {
        // Dead primary, live sibling: with failover configured each client
        // burns one budget unit to move to the sibling, then serves real
        // sessions there — no client-retry accounting involved.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = poolserver::PoolServer::start(poolserver::PoolConfig {
            pool_size: 4,
            lifecycle: httpcore::LifecyclePolicy::default(),
            shed_watermark: None,
            content,
        })
        .unwrap();
        let cfg = LoadConfig {
            clients: 3,
            duration: Duration::from_millis(800),
            failover: vec![server.addr()],
            failover_budget: 8,
            ..quick_cfg(dead)
        };
        let report = run(&cfg, &files);
        assert!(
            report.failover_retries >= 1 && report.failover_retries <= 8,
            "failover retries {} outside the budget",
            report.failover_retries
        );
        assert!(report.replies > 0, "sibling never served after failover");
        assert_eq!(
            report.retries, 0,
            "failover must not be folded into client retries"
        );
        assert!(report.errors.connection_refused > 0, "{:?}", report.errors);
        server.shutdown();
    }

    #[test]
    fn exhausted_failover_budget_bounds_sibling_retries() {
        // Budget 1, three clients, dead primary AND dead sibling: exactly
        // one sibling retry happens; everyone else stays on the ordinary
        // fail-count-pace path.
        fn dead_addr() -> SocketAddr {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        }
        let files = small_files();
        let cfg = LoadConfig {
            clients: 3,
            duration: Duration::from_millis(400),
            failover: vec![dead_addr()],
            failover_budget: 1,
            ..quick_cfg(dead_addr())
        };
        let report = run(&cfg, &files);
        assert_eq!(
            report.failover_retries, 1,
            "budget of 1 must admit exactly one failover retry"
        );
        assert_eq!(report.replies, 0);
        assert!(report.sessions_aborted > 1);
    }

    #[test]
    fn shed_refusals_classify_as_refused_not_reset() {
        // Watermark 0: the pool server abortively closes every accepted
        // connection before serving a byte. The generator must file these
        // under conn-refused (explicit refusal), not connection-reset.
        let files = small_files();
        let content = Arc::new(ContentStore::from_fileset(&files));
        let server = poolserver::PoolServer::start(poolserver::PoolConfig {
            pool_size: 4,
            lifecycle: httpcore::LifecyclePolicy::default(),
            shed_watermark: Some(0),
            content,
        })
        .unwrap();
        let mut cfg = LoadConfig {
            clients: 3,
            duration: Duration::from_millis(500),
            ..quick_cfg(server.addr())
        };
        cfg.obs = Some(obs::ObsConfig::default());
        let report = run(&cfg, &files);
        assert_eq!(report.replies, 0);
        assert!(
            report.errors.connection_refused > 0,
            "expected refusals: {:?}",
            report.errors
        );
        assert_eq!(
            report.errors.connection_reset, 0,
            "shed refusal misfiled as reset: {:?}",
            report.errors
        );
        assert!(server.stats().refused.load(std::sync::atomic::Ordering::Relaxed) > 0);
        // The obs capture records them with the Refused end reason.
        assert!(report
            .obs
            .requests
            .completed()
            .iter()
            .any(|b| b.end == EndReason::Refused));
        server.shutdown();
    }
}
