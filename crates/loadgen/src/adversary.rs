//! Adversarial clients — degenerate peers for the resilience harness.
//!
//! Each attack models a real-world misbehaviour class that an event-driven
//! server must survive on its own bookkeeping (no blocked thread notices on
//! its behalf):
//!
//! * [`AttackKind::SlowLoris`] — opens a request head and dribbles one
//!   padding header per interval, never finishing the head;
//! * [`AttackKind::ByteDrip`] — sends the request line itself one byte per
//!   interval;
//! * [`AttackKind::NeverReads`] — pipelines many requests and never reads a
//!   byte of reply, wedging the server's send path;
//! * [`AttackKind::IdleFlood`] — opens connections and sends nothing;
//! * [`AttackKind::FdStorm`] — opens as many simultaneous connections as it
//!   can and holds them, pushing the server toward fd exhaustion.
//!
//! Attack clients reconnect when the server disposes of them, keeping the
//! pressure constant for the whole attack window, and classify every
//! disposal they observe (408/431/503 answers vs silent resets) so the
//! harness can assert *how* the server defended itself, not just that it
//! survived.

use httpcore::parse_response_head;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Which degenerate peer to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    SlowLoris,
    ByteDrip,
    NeverReads,
    IdleFlood,
    FdStorm,
}

impl AttackKind {
    pub const ALL: [AttackKind; 5] = [
        AttackKind::SlowLoris,
        AttackKind::ByteDrip,
        AttackKind::NeverReads,
        AttackKind::IdleFlood,
        AttackKind::FdStorm,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            AttackKind::SlowLoris => "slow-loris",
            AttackKind::ByteDrip => "byte-drip",
            AttackKind::NeverReads => "never-reads",
            AttackKind::IdleFlood => "idle-flood",
            AttackKind::FdStorm => "fd-storm",
        }
    }
}

/// One attack run's parameters.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    pub target: SocketAddr,
    pub kind: AttackKind,
    /// Concurrent adversarial connections (threads for the dribbling
    /// attacks; a single holder thread multiplexes IdleFlood/FdStorm).
    pub conns: usize,
    /// Attack window.
    pub duration: Duration,
    /// Cadence for loris/drip bytes.
    pub drip_interval: Duration,
    /// Request target used by NeverReads (point it at a large body so the
    /// un-drained replies actually wedge the server's send buffer).
    pub path: String,
}

impl AttackConfig {
    pub fn new(target: SocketAddr, kind: AttackKind) -> Self {
        AttackConfig {
            target,
            kind,
            conns: 8,
            duration: Duration::from_secs(2),
            drip_interval: Duration::from_millis(100),
            path: "/f/0".to_string(),
        }
    }
}

/// What the adversarial clients observed. All counters are totals across
/// the attack's connections.
#[derive(Debug, Default, Clone)]
pub struct AttackReport {
    /// Connections successfully opened.
    pub opened: u64,
    /// `connect()` failures (kernel backlog overflow, refusals at SYN).
    pub connect_failed: u64,
    /// Disposals answered with `408 Request Timeout`.
    pub answered_408: u64,
    /// Disposals answered with `431 Request Header Fields Too Large`.
    pub answered_431: u64,
    /// Disposals answered with `503 Service Unavailable`.
    pub answered_503: u64,
    /// Connections the server closed without an HTTP answer (FIN or RST —
    /// the correct disposal for idle floods and never-reads peers).
    pub closed_by_server: u64,
    /// Connections still open when the attack window ended — what a
    /// defenseless server shows: every adversarial socket survives.
    pub held_to_end: u64,
}

impl AttackReport {
    fn merge(&mut self, other: &AttackReport) {
        self.opened += other.opened;
        self.connect_failed += other.connect_failed;
        self.answered_408 += other.answered_408;
        self.answered_431 += other.answered_431;
        self.answered_503 += other.answered_503;
        self.closed_by_server += other.closed_by_server;
        self.held_to_end += other.held_to_end;
    }

    /// Total disposals the server performed (any mechanism).
    pub fn disposed(&self) -> u64 {
        self.answered_408 + self.answered_431 + self.answered_503 + self.closed_by_server
    }
}

/// Run one attack to completion (blocks for `cfg.duration`).
pub fn run_attack(cfg: &AttackConfig) -> AttackReport {
    let deadline = Instant::now() + cfg.duration;
    match cfg.kind {
        AttackKind::IdleFlood | AttackKind::FdStorm => holder_attack(cfg, deadline),
        _ => {
            let mut handles = Vec::new();
            for _ in 0..cfg.conns {
                let cfg = cfg.clone();
                handles.push(std::thread::spawn(move || dribble_attack(&cfg, deadline)));
            }
            let mut report = AttackReport::default();
            for h in handles {
                if let Ok(r) = h.join() {
                    report.merge(&r);
                }
            }
            report
        }
    }
}

/// Read whatever the server sent (bounded, non-blocking-ish via a short
/// read timeout) and classify the disposal. Returns true when the
/// connection is finished (server closed or answered).
fn classify_disposal(stream: &mut TcpStream, report: &mut AttackReport) -> bool {
    let mut buf = Vec::with_capacity(512);
    let mut tmp = [0u8; 512];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    loop {
        match stream.read(&mut tmp) {
            Ok(0) => {
                // Orderly or abortive close; classify any answer we read.
                record_status(&buf, report);
                return true;
            }
            Ok(n) => {
                buf.extend_from_slice(&tmp[..n]);
                // A complete head is enough; the server closes after it.
                if let Some(Ok(_)) = parse_response_head(&buf) {
                    record_status(&buf, report);
                    return true;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return false; // nothing (more) from the server yet
            }
            Err(_) => {
                // Reset — classify anything that arrived before it.
                record_status(&buf, report);
                return true;
            }
        }
    }
}

fn record_status(buf: &[u8], report: &mut AttackReport) {
    match parse_response_head(buf) {
        Some(Ok(head)) => match head.status {
            408 => report.answered_408 += 1,
            431 => report.answered_431 += 1,
            503 => report.answered_503 += 1,
            _ => report.closed_by_server += 1,
        },
        _ => report.closed_by_server += 1,
    }
}

/// One dribbling connection at a time, reconnecting on disposal:
/// SlowLoris/ByteDrip feed bytes forever; NeverReads floods requests and
/// then refuses to drain replies.
fn dribble_attack(cfg: &AttackConfig, deadline: Instant) -> AttackReport {
    let mut report = AttackReport::default();
    while Instant::now() < deadline {
        let Ok(mut stream) = TcpStream::connect(cfg.target) else {
            report.connect_failed += 1;
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };
        report.opened += 1;
        let disposed = match cfg.kind {
            AttackKind::SlowLoris => {
                drip_bytes(&mut stream, cfg, deadline, &mut report, DripShape::Headers)
            }
            AttackKind::ByteDrip => drip_bytes(
                &mut stream,
                cfg,
                deadline,
                &mut report,
                DripShape::RequestLine,
            ),
            AttackKind::NeverReads => never_reads(&mut stream, cfg, deadline, &mut report),
            _ => unreachable!("holder attacks don't dribble"),
        };
        if !disposed {
            report.held_to_end += 1;
            return report; // window ended with the connection still alive
        }
    }
    report
}

enum DripShape {
    /// A finished request line, then one padding header per interval —
    /// forever short of the final CRLF.
    Headers,
    /// The request line itself, one byte per interval.
    RequestLine,
}

/// Returns true when the server disposed of the connection.
fn drip_bytes(
    stream: &mut TcpStream,
    cfg: &AttackConfig,
    deadline: Instant,
    report: &mut AttackReport,
    shape: DripShape,
) -> bool {
    let opener: &[u8] = match shape {
        DripShape::Headers => b"GET /f/0 HTTP/1.1\r\nHost: a\r\n",
        DripShape::RequestLine => b"",
    };
    if !opener.is_empty() && stream.write_all(opener).is_err() {
        report.closed_by_server += 1;
        return true;
    }
    let line = b"GET /f/0 HTTP/1.1\r\n";
    let mut line_pos = 0usize;
    while Instant::now() < deadline {
        let sent = match shape {
            DripShape::Headers => stream.write_all(b"X-Pad: y\r\n"),
            DripShape::RequestLine => {
                let b = line[line_pos % line.len()];
                line_pos += 1;
                stream.write_all(&[b])
            }
        };
        if sent.is_err() {
            // RST on a previous disposal surfaces as a write error; any
            // answer the server sent first is still in the receive queue.
            classify_disposal(stream, report);
            return true;
        }
        if classify_disposal(stream, report) {
            return true;
        }
        std::thread::sleep(cfg.drip_interval.min(Duration::from_millis(100)));
    }
    false
}

/// Pipeline a burst of requests, then hold the socket without reading.
/// Returns true when the server disposed of the connection.
fn never_reads(
    stream: &mut TcpStream,
    cfg: &AttackConfig,
    deadline: Instant,
    report: &mut AttackReport,
) -> bool {
    // A deep pipeline of replies the client will never drain: once our
    // receive window and the server's send buffer fill, the server's write
    // path is wedged and only its write-stall deadline can free it.
    let burst: String = (0..64)
        .map(|_| format!("GET {} HTTP/1.1\r\nHost: a\r\n\r\n", cfg.path))
        .collect();
    if stream.write_all(burst.as_bytes()).is_err() {
        report.closed_by_server += 1;
        return true;
    }
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        // Never read. A dead socket surfaces on the next tiny write (the
        // pipelined requests keep the server's reply queue loaded anyway).
        if stream.take_error().ok().flatten().is_some()
            || stream
                .write_all(format!("GET {} HTTP/1.1\r\nHost: a\r\n\r\n", cfg.path).as_bytes())
                .is_err()
        {
            report.closed_by_server += 1;
            return true;
        }
    }
    false
}

/// IdleFlood / FdStorm: one thread opening and holding many sockets,
/// sweeping them for server-side disposals and reopening to keep the
/// pressure constant.
fn holder_attack(cfg: &AttackConfig, deadline: Instant) -> AttackReport {
    let mut report = AttackReport::default();
    let mut held: Vec<TcpStream> = Vec::with_capacity(cfg.conns);
    let mut tmp = [0u8; 512];
    while Instant::now() < deadline {
        // Top up to the target count. FdStorm opens as fast as it can;
        // IdleFlood paces itself so the flood looks like quiet clients.
        while held.len() < cfg.conns && Instant::now() < deadline {
            match TcpStream::connect_timeout(&cfg.target, Duration::from_millis(200)) {
                Ok(s) => {
                    let _ = s.set_nonblocking(true);
                    report.opened += 1;
                    held.push(s);
                }
                Err(_) => {
                    report.connect_failed += 1;
                    break; // backlog full or fds refused: stop topping up
                }
            }
            if cfg.kind == AttackKind::IdleFlood {
                break; // one new idle socket per sweep
            }
        }
        // Sweep for disposals.
        held.retain_mut(|s| {
            let mut local = AttackReport::default();
            let done = match s.read(&mut tmp) {
                Ok(0) => {
                    local.closed_by_server += 1;
                    true
                }
                Ok(n) => {
                    record_status(&tmp[..n], &mut local);
                    true
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                Err(_) => {
                    local.closed_by_server += 1;
                    true
                }
            };
            report.merge(&local);
            !done
        });
        std::thread::sleep(Duration::from_millis(10));
    }
    report.held_to_end += held.len() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpcore::{ContentStore, LifecyclePolicy};
    use std::sync::Arc;

    fn content() -> Arc<ContentStore> {
        let mut rng = desim::Rng::new(7);
        let fs = workload::FileSet::build(
            &workload::SurgeConfig {
                num_files: 10,
                tail_prob: 0.0,
                ..workload::SurgeConfig::default()
            },
            &mut rng,
        );
        Arc::new(ContentStore::from_fileset(&fs))
    }

    fn hardened_nio() -> nioserver::NioServer {
        nioserver::NioServer::start(nioserver::NioConfig {
            workers: 1,
            backend: nioserver::BackendKind::from_env(),
            accept: nioserver::AcceptMode::from_env(),
            shed_watermark: None,
            lifecycle: LifecyclePolicy::hardened(
                Duration::from_millis(400),
                Duration::from_millis(300),
                Duration::from_millis(400),
            ),
            content: content(),
        })
        .unwrap()
    }

    #[test]
    fn loris_clients_are_answered_408() {
        let server = hardened_nio();
        let mut cfg = AttackConfig::new(server.addr(), AttackKind::SlowLoris);
        cfg.conns = 4;
        cfg.duration = Duration::from_secs(2);
        let report = run_attack(&cfg);
        assert!(report.opened >= 4, "report: {report:?}");
        assert!(report.answered_408 > 0, "report: {report:?}");
        // At most each thread's final connection (opened just before the
        // window closed) may still be alive; every earlier one was disposed.
        assert!(
            report.held_to_end <= 4,
            "loris sockets outlived their deadline: {report:?}"
        );
        server.shutdown();
    }

    #[test]
    fn idle_flood_is_reclaimed() {
        let server = hardened_nio();
        let mut cfg = AttackConfig::new(server.addr(), AttackKind::IdleFlood);
        cfg.conns = 8;
        cfg.duration = Duration::from_secs(2);
        let report = run_attack(&cfg);
        assert!(report.opened >= 4, "report: {report:?}");
        assert!(report.closed_by_server > 0, "report: {report:?}");
        server.shutdown();
    }

    #[test]
    fn undefended_server_holds_every_idle_socket() {
        // The contrast case: with the paper-default policy nothing disposes
        // of idle adversaries — exactly the behaviour Fig 3 celebrates and
        // the resilience harness measures the cost of.
        let server = nioserver::NioServer::start(nioserver::NioConfig {
            workers: 1,
            backend: nioserver::BackendKind::from_env(),
            accept: nioserver::AcceptMode::from_env(),
            shed_watermark: None,
            lifecycle: LifecyclePolicy::default(),
            content: content(),
        })
        .unwrap();
        let mut cfg = AttackConfig::new(server.addr(), AttackKind::IdleFlood);
        cfg.conns = 6;
        cfg.duration = Duration::from_millis(800);
        let report = run_attack(&cfg);
        assert_eq!(report.closed_by_server, 0, "report: {report:?}");
        assert!(report.held_to_end > 0, "report: {report:?}");
        server.shutdown();
    }
}
