//! The emulated httperf client state machine.
//!
//! Each client runs an endless loop of sessions against the SUT, exactly as
//! the paper configures httperf for "constant workload intensity": connect,
//! play the session's bursts (pipelined requests separated by think times),
//! close, immediately start the next session. A 10 s socket timeout guards
//! every phase that awaits the server (connect, reply); server-initiated
//! closes surface as connection resets on the client's next send.
//!
//! The state machine is *pure*: it never schedules anything itself. Every
//! transition returns a [`ClientAction`] telling the testbed what to do on
//! the client's behalf, which keeps this logic independently testable and
//! reusable by both simulated server architectures.

use crate::metrics::ClientMetrics;
use desim::{Rng, SimDuration, SimTime};
use faults::RetryPolicy;
use metrics::ClientError;
use workload::{FileId, FileSet, SessionConfig, SessionPlan};

/// Identifier of an emulated client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

/// Client-side socket parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// httperf's client timeout: applies to connect and to reply progress.
    /// The paper uses 10 s.
    pub timeout: SimDuration,
    /// TCP SYN retransmission interval when a connect attempt gets no
    /// answer (backlog overflow drops the SYN silently).
    pub syn_retry: SimDuration,
    /// Pause before reconnecting after a refused connection.
    pub refusal_backoff: SimDuration,
    /// Session shape.
    pub session: SessionConfig,
    /// Approximate bytes of an HTTP request on the wire (for accounting).
    pub request_bytes: u64,
    /// Opt-in recovery: reconnect after errors with capped exponential
    /// backoff + jitter instead of immediately. `None` (the default)
    /// reproduces the paper's httperf behaviour exactly.
    pub retry: Option<RetryPolicy>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: SimDuration::from_secs(10),
            syn_retry: SimDuration::from_secs(3),
            refusal_backoff: SimDuration::from_secs(1),
            session: SessionConfig::default(),
            request_bytes: 300,
            retry: None,
        }
    }
}

/// What the testbed must do next on behalf of this client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Open a new connection now.
    Connect,
    /// Open a new connection after a delay (refusal backoff).
    ConnectAfter(SimDuration),
    /// Send these (pipelined) requests on the current connection.
    SendBurst(Vec<FileId>),
    /// Schedule a think-done wake-up after the delay.
    Think(SimDuration),
    /// Close the current connection cleanly, then open a new one
    /// (session boundary).
    CloseThenConnect,
}

/// Client protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// Not yet started.
    Idle,
    /// SYN out, waiting for establishment.
    Connecting,
    /// Burst sent, awaiting one or more replies.
    AwaitingReplies,
    /// Between bursts.
    Thinking,
}

/// One emulated client.
#[derive(Debug)]
pub struct Client {
    pub id: ClientId,
    cfg: ClientConfig,
    rng: Rng,
    phase: ClientPhase,
    plan: SessionPlan,
    burst_idx: usize,
    /// Send timestamps of requests whose replies are still outstanding
    /// (FIFO: HTTP/1.1 replies arrive in order).
    outstanding: std::collections::VecDeque<SimTime>,
    /// When the current connect attempt started (for connection time).
    connect_started: Option<SimTime>,
    /// Requests completed in the current session (for abort accounting).
    session_had_error: bool,
    /// Consecutive errors since the last successful establishment, used to
    /// escalate the retry backoff when a policy is configured.
    retry_attempt: u32,
}

impl Client {
    /// Create a client with its own RNG stream and first session plan.
    pub fn new(id: ClientId, cfg: ClientConfig, files: &FileSet, root_rng: &Rng) -> Client {
        let mut rng = root_rng.split_labeled(id.0 as u64);
        let plan = SessionPlan::generate(&cfg.session, files, &mut rng);
        Client {
            id,
            cfg,
            rng,
            phase: ClientPhase::Idle,
            plan,
            burst_idx: 0,
            outstanding: std::collections::VecDeque::new(),
            connect_started: None,
            session_had_error: false,
            retry_attempt: 0,
        }
    }

    /// Current phase (for assertions and debugging).
    pub fn phase(&self) -> ClientPhase {
        self.phase
    }

    /// The configured client timeout.
    pub fn timeout(&self) -> SimDuration {
        self.cfg.timeout
    }

    /// The configured SYN retry interval.
    pub fn syn_retry(&self) -> SimDuration {
        self.cfg.syn_retry
    }

    /// Bytes a request occupies on the wire.
    pub fn request_bytes(&self) -> u64 {
        self.cfg.request_bytes
    }

    /// Number of replies currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// When the in-progress connect attempt started, while connecting.
    /// This is the anchor `ClientMetrics::record_connect` measures from, so
    /// observability spans built on it agree with the figure-4 metric.
    pub fn connecting_since(&self) -> Option<SimTime> {
        self.connect_started
    }

    fn fresh_session(&mut self, files: &FileSet) {
        self.plan = SessionPlan::generate(&self.cfg.session, files, &mut self.rng);
        self.burst_idx = 0;
        self.outstanding.clear();
        self.session_had_error = false;
    }

    /// The client begins its life: connect for the first session.
    pub fn on_start(&mut self, now: SimTime) -> ClientAction {
        assert_eq!(self.phase, ClientPhase::Idle);
        self.phase = ClientPhase::Connecting;
        self.connect_started = Some(now);
        ClientAction::Connect
    }

    /// The connection was established: fire the first burst.
    pub fn on_connected(&mut self, now: SimTime, m: &mut ClientMetrics) -> ClientAction {
        assert_eq!(self.phase, ClientPhase::Connecting, "client {:?}", self.id);
        let started = self.connect_started.expect("no connect start recorded");
        m.record_connect(now, now.saturating_since(started));
        self.connect_started = None;
        self.retry_attempt = 0;
        self.start_burst(now, m)
    }

    /// Post-error reconnect action. Without a retry policy the client
    /// reconnects immediately (or after `fallback`, when the caller has
    /// one — the refusal path). With one, consecutive errors escalate a
    /// capped exponential backoff with jitter drawn from the client's own
    /// deterministic RNG stream; the escalation ladder resets after
    /// `max_retries` rungs (and on any successful establishment).
    fn reconnect_action(
        &mut self,
        now: SimTime,
        fallback: Option<SimDuration>,
        m: &mut ClientMetrics,
    ) -> ClientAction {
        let Some(policy) = self.cfg.retry else {
            return match fallback {
                Some(d) => {
                    self.connect_started = Some(now + d);
                    ClientAction::ConnectAfter(d)
                }
                None => {
                    self.connect_started = Some(now);
                    ClientAction::Connect
                }
            };
        };
        let attempt = self.retry_attempt;
        self.retry_attempt = if attempt >= policy.max_retries {
            0
        } else {
            attempt + 1
        };
        m.record_retry(now);
        let d = SimDuration::from_nanos(policy.backoff_ns(attempt, self.rng.f64()));
        self.connect_started = Some(now + d);
        ClientAction::ConnectAfter(d)
    }

    fn start_burst(&mut self, now: SimTime, m: &mut ClientMetrics) -> ClientAction {
        let burst = &self.plan.bursts[self.burst_idx];
        let files = burst.files.clone();
        self.phase = ClientPhase::AwaitingReplies;
        for _ in &files {
            self.outstanding.push_back(now);
            m.record_request_sent(now, self.cfg.request_bytes);
        }
        ClientAction::SendBurst(files)
    }

    /// A complete reply arrived. Returns the next action, or `None` when
    /// the client keeps waiting for more replies of the same burst.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        bytes: u64,
        files: &FileSet,
        m: &mut ClientMetrics,
    ) -> Option<ClientAction> {
        assert_eq!(self.phase, ClientPhase::AwaitingReplies);
        let sent_at = self
            .outstanding
            .pop_front()
            .expect("reply with no outstanding request");
        m.record_reply(now, now.saturating_since(sent_at), bytes);
        if !self.outstanding.is_empty() {
            return None;
        }
        // Burst complete: think before the next, or finish the session.
        self.burst_idx += 1;
        if self.burst_idx < self.plan.bursts.len() {
            let think = self.plan.bursts[self.burst_idx].think_before;
            self.phase = ClientPhase::Thinking;
            Some(ClientAction::Think(think))
        } else {
            m.record_session_end(now, !self.session_had_error);
            self.fresh_session(files);
            self.phase = ClientPhase::Connecting;
            self.connect_started = Some(now);
            Some(ClientAction::CloseThenConnect)
        }
    }

    /// The think timer fired: send the next burst.
    pub fn on_think_done(&mut self, now: SimTime, m: &mut ClientMetrics) -> ClientAction {
        assert_eq!(self.phase, ClientPhase::Thinking);
        self.start_burst(now, m)
    }

    /// The client's socket timeout expired while connecting or awaiting
    /// replies: record the error, abort the session, start a new one.
    pub fn on_timeout(
        &mut self,
        now: SimTime,
        files: &FileSet,
        m: &mut ClientMetrics,
    ) -> ClientAction {
        assert!(
            matches!(
                self.phase,
                ClientPhase::Connecting | ClientPhase::AwaitingReplies
            ),
            "timeout in {:?}",
            self.phase
        );
        m.record_error(now, ClientError::ClientTimeout);
        m.record_session_end(now, false);
        self.fresh_session(files);
        self.phase = ClientPhase::Connecting;
        self.reconnect_action(now, None, m)
    }

    /// The server reset the connection (its idle timeout closed it and the
    /// client sent on the dead socket): error, new session.
    pub fn on_reset(
        &mut self,
        now: SimTime,
        files: &FileSet,
        m: &mut ClientMetrics,
    ) -> ClientAction {
        m.record_error(now, ClientError::ConnectionReset);
        m.record_session_end(now, false);
        self.fresh_session(files);
        self.phase = ClientPhase::Connecting;
        self.reconnect_action(now, None, m)
    }

    /// The server refused the connection (backlog overflow observed as an
    /// explicit refusal): error, back off, new session.
    pub fn on_refused(
        &mut self,
        now: SimTime,
        files: &FileSet,
        m: &mut ClientMetrics,
    ) -> ClientAction {
        assert_eq!(self.phase, ClientPhase::Connecting);
        m.record_error(now, ClientError::ConnectionRefused);
        m.record_session_end(now, false);
        self.fresh_session(files);
        // Remain in Connecting; the retry IS the next connect attempt.
        self.reconnect_action(now, Some(self.cfg.refusal_backoff), m)
    }

    /// The burst the client is about to send in `on_think_done` — exposed
    /// so the testbed can detect a server-side idle close *before* wasting
    /// the send (RST arrives in response to the first packet).
    pub fn peek_next_burst(&self) -> Option<&[FileId]> {
        self.plan
            .bursts
            .get(self.burst_idx)
            .map(|b| b.files.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Rng;
    use workload::SurgeConfig;

    fn fixture() -> (Client, FileSet, ClientMetrics) {
        let root = Rng::new(7);
        let mut build_rng = Rng::new(8);
        let files = FileSet::build(&SurgeConfig::default(), &mut build_rng);
        let client = Client::new(ClientId(0), ClientConfig::default(), &files, &root);
        let m = ClientMetrics::new(SimDuration::from_secs(1));
        (client, files, m)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn start_connect_burst_cycle() {
        let (mut c, files, mut m) = fixture();
        assert_eq!(c.on_start(t(0)), ClientAction::Connect);
        assert_eq!(c.phase(), ClientPhase::Connecting);
        let act = c.on_connected(t(5), &mut m);
        let ClientAction::SendBurst(reqs) = act else {
            panic!("expected burst, got {act:?}");
        };
        assert!(!reqs.is_empty());
        assert_eq!(c.phase(), ClientPhase::AwaitingReplies);
        assert_eq!(c.outstanding(), reqs.len());
        assert!((m.mean_connect_ms() - 5.0).abs() < 0.1);

        // Drain the burst's replies.
        let mut last = None;
        for _ in 0..reqs.len() {
            last = c.on_reply(t(50), 1000, &files, &mut m);
        }
        match last.expect("burst completion must yield an action") {
            ClientAction::Think(d) => {
                // Think times are bounded below by the Pareto scale (0.5 s).
                assert!(d >= SimDuration::from_millis(500));
                assert_eq!(c.phase(), ClientPhase::Thinking);
            }
            ClientAction::CloseThenConnect => {
                // Single-burst session: immediately reconnects.
                assert_eq!(c.phase(), ClientPhase::Connecting);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.traffic.replies_received, reqs.len() as u64);
    }

    #[test]
    fn mid_burst_replies_return_none() {
        let (mut c, files, mut m) = fixture();
        c.on_start(t(0));
        let ClientAction::SendBurst(reqs) = c.on_connected(t(1), &mut m) else {
            panic!()
        };
        if reqs.len() >= 2 {
            assert_eq!(c.on_reply(t(10), 500, &files, &mut m), None);
            assert_eq!(c.outstanding(), reqs.len() - 1);
        }
    }

    #[test]
    fn timeout_aborts_session_and_reconnects() {
        let (mut c, files, mut m) = fixture();
        c.on_start(t(0));
        c.on_connected(t(1), &mut m);
        let act = c.on_timeout(t(10_001), &files, &mut m);
        assert_eq!(act, ClientAction::Connect);
        assert_eq!(c.phase(), ClientPhase::Connecting);
        assert_eq!(c.outstanding(), 0);
        assert_eq!(m.errors.client_timeout, 1);
        assert_eq!(m.traffic.sessions_aborted, 1);
    }

    #[test]
    fn reset_counts_and_restarts() {
        let (mut c, files, mut m) = fixture();
        c.on_start(t(0));
        c.on_connected(t(1), &mut m);
        // Simulate think → server idle-closed → send hits reset.
        let act = c.on_reset(t(20_000), &files, &mut m);
        assert_eq!(act, ClientAction::Connect);
        assert_eq!(m.errors.connection_reset, 1);
    }

    #[test]
    fn refusal_backs_off() {
        let (mut c, files, mut m) = fixture();
        c.on_start(t(0));
        let act = c.on_refused(t(1), &files, &mut m);
        assert_eq!(
            act,
            ClientAction::ConnectAfter(SimDuration::from_secs(1))
        );
        assert_eq!(m.errors.connection_refused, 1);
        assert_eq!(c.phase(), ClientPhase::Connecting);
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let root = Rng::new(7);
        let mut build_rng = Rng::new(8);
        let files = FileSet::build(&SurgeConfig::default(), &mut build_rng);
        let cfg = ClientConfig {
            retry: Some(RetryPolicy {
                max_retries: 3,
                base_ns: 100_000_000,
                cap_ns: 1_000_000_000,
                jitter_frac: 0.0,
            }),
            ..ClientConfig::default()
        };
        let mut c = Client::new(ClientId(0), cfg, &files, &root);
        let mut m = ClientMetrics::new(SimDuration::from_secs(1));
        c.on_start(t(0));
        c.on_connected(t(1), &mut m);
        // Consecutive timeouts escalate the backoff: 100 ms, 200 ms, 400 ms.
        let mut delays = Vec::new();
        for _ in 0..3 {
            match c.on_timeout(t(20_000), &files, &mut m) {
                ClientAction::ConnectAfter(d) => delays.push(d.as_nanos()),
                other => panic!("expected backoff, got {other:?}"),
            }
        }
        assert_eq!(delays, vec![100_000_000, 200_000_000, 400_000_000]);
        assert_eq!(m.traffic.retries, 3);
        // A successful establishment resets the ladder.
        c.on_connected(t(21_000), &mut m);
        match c.on_timeout(t(40_000), &files, &mut m) {
            ClientAction::ConnectAfter(d) => assert_eq!(d.as_nanos(), 100_000_000),
            other => panic!("expected backoff, got {other:?}"),
        }
    }

    #[test]
    fn full_session_completes_and_renews() {
        let (mut c, files, mut m) = fixture();
        c.on_start(t(0));
        let mut now = 1u64;
        let mut action = c.on_connected(t(now), &mut m);
        let mut sessions = 0;
        let mut safety = 0;
        while sessions < 3 {
            safety += 1;
            assert!(safety < 10_000, "session loop did not terminate");
            match action {
                ClientAction::SendBurst(reqs) => {
                    now += 10;
                    let mut next = None;
                    for _ in 0..reqs.len() {
                        next = c.on_reply(t(now), 2000, &files, &mut m);
                    }
                    action = next.unwrap();
                }
                ClientAction::Think(d) => {
                    now += d.as_nanos() / 1_000_000 + 1;
                    action = c.on_think_done(t(now), &mut m);
                }
                ClientAction::CloseThenConnect => {
                    sessions += 1;
                    now += 5;
                    action = c.on_connected(t(now), &mut m);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(m.traffic.sessions_completed, 3);
        assert_eq!(m.traffic.sessions_aborted, 0);
        assert!(m.traffic.replies_received >= 3);
    }

    #[test]
    fn clients_are_deterministic_per_id() {
        let root = Rng::new(7);
        let mut build_rng = Rng::new(8);
        let files = FileSet::build(&SurgeConfig::default(), &mut build_rng);
        let mut a = Client::new(ClientId(3), ClientConfig::default(), &files, &root);
        let mut b = Client::new(ClientId(3), ClientConfig::default(), &files, &root);
        let mut m = ClientMetrics::new(SimDuration::from_secs(1));
        a.on_start(t(0));
        b.on_start(t(0));
        assert_eq!(a.on_connected(t(1), &mut m), b.on_connected(t(1), &mut m));
    }
}
