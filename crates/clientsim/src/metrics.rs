//! Aggregated measurements across the emulated client population —
//! the simulation's equivalent of httperf's output block.

use desim::{SimDuration, SimTime};
use metrics::{ClientError, ErrorCounters, Histogram, TrafficCounters, WindowedSeries};

/// Everything the load generator measures, shared by all clients.
#[derive(Debug)]
pub struct ClientMetrics {
    /// Per-reply response time (request sent → last byte received), µs.
    pub response_time_us: Histogram,
    /// Connection establishment time (SYN → established), µs.
    pub connect_time_us: Histogram,
    /// Replies completed, per 1 s window (throughput).
    pub replies: WindowedSeries,
    /// Client-timeout errors per window (figure 3a).
    pub timeout_series: WindowedSeries,
    /// Connection-reset errors per window (figure 3b).
    pub reset_series: WindowedSeries,
    /// Explicit connection refusals per window (admission control and
    /// graceful drain make these; silent SYN drops do not).
    pub refused_series: WindowedSeries,
    /// Error totals by kind.
    pub errors: ErrorCounters,
    /// Request/reply/session/byte totals.
    pub traffic: TrafficCounters,
    /// Histograms and error totals only accumulate after this instant
    /// (warm-up exclusion); series always record and trim by window instead.
    measure_from: SimTime,
}

impl ClientMetrics {
    pub fn new(window: SimDuration) -> Self {
        ClientMetrics {
            response_time_us: Histogram::default_precision(),
            connect_time_us: Histogram::default_precision(),
            replies: WindowedSeries::new(window),
            timeout_series: WindowedSeries::new(window),
            reset_series: WindowedSeries::new(window),
            refused_series: WindowedSeries::new(window),
            errors: ErrorCounters::default(),
            traffic: TrafficCounters::default(),
            measure_from: SimTime::ZERO,
        }
    }

    /// Exclude everything before `t` from histograms and counters.
    pub fn set_measure_from(&mut self, t: SimTime) {
        self.measure_from = t;
    }

    /// The measurement-start boundary.
    pub fn measure_from(&self) -> SimTime {
        self.measure_from
    }

    #[inline]
    fn measuring(&self, now: SimTime) -> bool {
        now >= self.measure_from
    }

    /// A reply fully arrived.
    pub fn record_reply(&mut self, now: SimTime, response_time: SimDuration, bytes: u64) {
        self.replies.record_one(now);
        if self.measuring(now) {
            self.response_time_us
                .record(response_time.as_nanos() / 1_000);
            self.traffic.replies_received += 1;
            self.traffic.bytes_received += bytes;
        }
    }

    /// A connection was established.
    pub fn record_connect(&mut self, now: SimTime, connect_time: SimDuration) {
        if self.measuring(now) {
            self.connect_time_us.record(connect_time.as_nanos() / 1_000);
            self.traffic.connections_established += 1;
        }
    }

    /// A request was put on the wire.
    pub fn record_request_sent(&mut self, now: SimTime, bytes: u64) {
        if self.measuring(now) {
            self.traffic.requests_sent += 1;
            self.traffic.bytes_sent += bytes;
        }
    }

    /// An error was observed.
    pub fn record_error(&mut self, now: SimTime, kind: ClientError) {
        match kind {
            ClientError::ClientTimeout => self.timeout_series.record_one(now),
            ClientError::ConnectionReset => self.reset_series.record_one(now),
            ClientError::ConnectionRefused => self.refused_series.record_one(now),
            _ => {}
        }
        if self.measuring(now) {
            self.errors.record(kind);
        }
    }

    /// The client scheduled a policy-driven reconnect after an error.
    pub fn record_retry(&mut self, now: SimTime) {
        if self.measuring(now) {
            self.traffic.retries += 1;
        }
    }

    /// A session ran to completion (or aborted).
    pub fn record_session_end(&mut self, now: SimTime, completed: bool) {
        if self.measuring(now) {
            if completed {
                self.traffic.sessions_completed += 1;
            } else {
                self.traffic.sessions_aborted += 1;
            }
        }
    }

    /// Steady-state reply throughput, skipping warm-up/cool-down windows.
    pub fn throughput_rps(&self, skip_head: usize, skip_tail: usize) -> f64 {
        self.replies.steady_rate(skip_head, skip_tail)
    }

    /// Mean response time in milliseconds over the measured region.
    pub fn mean_response_ms(&self) -> f64 {
        self.response_time_us.mean() / 1_000.0
    }

    /// Mean connection time in milliseconds over the measured region.
    pub fn mean_connect_ms(&self) -> f64 {
        self.connect_time_us.mean() / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ClientMetrics {
        ClientMetrics::new(SimDuration::from_secs(1))
    }

    #[test]
    fn warmup_exclusion() {
        let mut cm = m();
        cm.set_measure_from(SimTime::from_secs(10));
        cm.record_reply(SimTime::from_secs(5), SimDuration::from_millis(3), 100);
        assert_eq!(cm.traffic.replies_received, 0);
        assert!(cm.response_time_us.is_empty());
        // ... but the throughput series still sees the early reply.
        assert!(!cm.replies.is_empty());
        cm.record_reply(SimTime::from_secs(11), SimDuration::from_millis(3), 100);
        assert_eq!(cm.traffic.replies_received, 1);
        assert_eq!(cm.response_time_us.count(), 1);
    }

    #[test]
    fn error_series_split_by_kind() {
        let mut cm = m();
        cm.record_error(SimTime::from_secs(1), ClientError::ClientTimeout);
        cm.record_error(SimTime::from_secs(1), ClientError::ConnectionReset);
        cm.record_error(SimTime::from_secs(1), ClientError::ConnectionReset);
        assert_eq!(cm.errors.client_timeout, 1);
        assert_eq!(cm.errors.connection_reset, 2);
        assert!((cm.timeout_series.mean_rate() - 0.5).abs() < 1e-9);
        assert!((cm.reset_series.mean_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn response_time_units() {
        let mut cm = m();
        cm.record_reply(SimTime::from_secs(1), SimDuration::from_millis(250), 10);
        assert!((cm.mean_response_ms() - 250.0).abs() < 1.0);
    }

    #[test]
    fn session_accounting() {
        let mut cm = m();
        cm.record_session_end(SimTime::from_secs(1), true);
        cm.record_session_end(SimTime::from_secs(1), false);
        cm.record_session_end(SimTime::from_secs(1), true);
        assert_eq!(cm.traffic.sessions_completed, 2);
        assert_eq!(cm.traffic.sessions_aborted, 1);
    }
}
