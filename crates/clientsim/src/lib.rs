//! `clientsim` — the emulated httperf client population.
//!
//! * [`client`] — the per-client state machine: sessions, bursts, think
//!   times, timeouts, resets and refusals, expressed as pure transitions
//!   returning [`ClientAction`]s for the testbed to execute;
//! * [`metrics`] — the aggregated measurement block (throughput, response
//!   and connection time histograms, error series) mirroring httperf's
//!   summary output.

pub mod client;
pub mod metrics;

pub use client::{Client, ClientAction, ClientConfig, ClientId, ClientPhase};
pub use metrics::ClientMetrics;
