//! Property tests for the client state machine: arbitrary interleavings of
//! server-side outcomes never corrupt the client's phase or its accounting.

use clientsim::{Client, ClientAction, ClientConfig, ClientId, ClientMetrics, ClientPhase};
use desim::{Rng, SimDuration, SimTime};
use proptest::prelude::*;
use workload::{FileSet, SurgeConfig};

fn fixture(seed: u64) -> (Client, FileSet, ClientMetrics) {
    let root = Rng::new(seed);
    let mut build = Rng::new(seed ^ 1);
    let files = FileSet::build(
        &SurgeConfig {
            num_files: 50,
            ..SurgeConfig::default()
        },
        &mut build,
    );
    let c = Client::new(ClientId(0), ClientConfig::default(), &files, &root);
    let m = ClientMetrics::new(SimDuration::from_secs(1));
    (c, files, m)
}

/// The adversary's moves at each step, chosen from whatever is legal in the
/// client's current phase.
#[derive(Debug, Clone, Copy)]
enum Adversary {
    /// Deliver the expected happy-path outcome.
    Proceed,
    /// Fire the client timeout (legal while connecting/awaiting).
    Timeout,
    /// Reset the connection (legal once established).
    Reset,
}

proptest! {
    /// Whatever the server does, the client keeps a legal phase, never has
    /// outstanding replies outside AwaitingReplies, and its error/session
    /// accounting only grows.
    #[test]
    fn client_state_machine_is_total(
        seed in 0u64..10_000,
        moves in proptest::collection::vec(0u8..3, 1..120),
    ) {
        let (mut c, files, mut m) = fixture(seed);
        let mut now = SimTime::ZERO;
        let mut pending: Option<ClientAction> = Some(c.on_start(now));
        let mut connected = false;

        for &mv in &moves {
            now += SimDuration::from_millis(37);
            let adversary = match mv % 3 {
                0 => Adversary::Proceed,
                1 => Adversary::Timeout,
                _ => Adversary::Reset,
            };
            let action = pending.take();
            let next: Option<ClientAction> = match (c.phase(), adversary) {
                (ClientPhase::Connecting, Adversary::Timeout) => {
                    connected = false;
                    Some(c.on_timeout(now, &files, &mut m))
                }
                (ClientPhase::Connecting, _) => {
                    connected = true;
                    Some(c.on_connected(now, &mut m))
                }
                (ClientPhase::AwaitingReplies, Adversary::Timeout) => {
                    connected = false;
                    Some(c.on_timeout(now, &files, &mut m))
                }
                (ClientPhase::AwaitingReplies, Adversary::Reset) if connected => {
                    connected = false;
                    Some(c.on_reset(now, &files, &mut m))
                }
                (ClientPhase::AwaitingReplies, _) => {
                    c.on_reply(now, 1000, &files, &mut m)
                }
                (ClientPhase::Thinking, Adversary::Reset) if connected => {
                    connected = false;
                    Some(c.on_reset(now, &files, &mut m))
                }
                (ClientPhase::Thinking, _) => Some(c.on_think_done(now, &mut m)),
                (ClientPhase::Idle, _) => unreachable!("client started"),
            };
            // Phase/outstanding coherence after every transition.
            match c.phase() {
                ClientPhase::AwaitingReplies => {
                    prop_assert!(c.outstanding() > 0, "awaiting with nothing outstanding");
                }
                _ => prop_assert_eq!(c.outstanding(), 0, "outstanding outside awaiting"),
            }
            // Actions are only produced in compatible phases.
            if let Some(a) = &next {
                match a {
                    ClientAction::SendBurst(files_in_burst) => {
                        prop_assert_eq!(c.phase(), ClientPhase::AwaitingReplies);
                        prop_assert!(!files_in_burst.is_empty());
                    }
                    ClientAction::Think(_) => {
                        prop_assert_eq!(c.phase(), ClientPhase::Thinking)
                    }
                    ClientAction::Connect
                    | ClientAction::ConnectAfter(_)
                    | ClientAction::CloseThenConnect => {
                        prop_assert_eq!(c.phase(), ClientPhase::Connecting)
                    }
                }
            }
            // CloseThenConnect and Connect imply a fresh connection attempt.
            if matches!(
                next,
                Some(ClientAction::Connect)
                    | Some(ClientAction::CloseThenConnect)
                    | Some(ClientAction::ConnectAfter(_))
            ) {
                connected = false;
            }
            pending = next;
            let _ = action; // previous action is fully superseded
        }

        // Accounting sanity: every error was counted somewhere, totals
        // consistent with events.
        let errors = m.errors.total();
        let sessions = m.traffic.sessions_completed + m.traffic.sessions_aborted;
        prop_assert!(m.traffic.sessions_aborted >= errors.saturating_sub(sessions),
            "errors {} vs sessions {}", errors, sessions);
    }

    /// Reply accounting: replies recorded equal on_reply calls, and the
    /// response-time histogram matches.
    #[test]
    fn reply_accounting_matches(seed in 0u64..10_000, bursts in 1usize..20) {
        let (mut c, files, mut m) = fixture(seed);
        let mut now = SimTime::from_secs(1);
        c.on_start(now);
        let mut action = c.on_connected(now, &mut m);
        let mut replies = 0u64;
        for _ in 0..bursts {
            match action {
                ClientAction::SendBurst(reqs) => {
                    let mut next = None;
                    for _ in 0..reqs.len() {
                        now += SimDuration::from_millis(5);
                        next = c.on_reply(now, 500, &files, &mut m);
                        replies += 1;
                    }
                    action = next.expect("burst end yields an action");
                }
                ClientAction::Think(_) => {
                    now += SimDuration::from_secs(2);
                    action = c.on_think_done(now, &mut m);
                }
                ClientAction::CloseThenConnect | ClientAction::Connect => {
                    now += SimDuration::from_millis(1);
                    action = c.on_connected(now, &mut m);
                }
                ClientAction::ConnectAfter(_) => {
                    now += SimDuration::from_secs(1);
                    action = c.on_connected(now, &mut m);
                }
            }
        }
        prop_assert_eq!(m.traffic.replies_received, replies);
        prop_assert_eq!(m.response_time_us.count(), replies);
    }
}
