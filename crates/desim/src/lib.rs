//! `desim` — the discrete-event simulation kernel underneath `eventscale`.
//!
//! This crate provides the substrate every simulated experiment in the
//! workspace runs on:
//!
//! * a virtual clock with nanosecond resolution ([`SimTime`], [`SimDuration`]);
//! * a deterministic, splittable PRNG ([`Rng`]) so runs are bit-reproducible
//!   from a single seed;
//! * a pending-event set abstraction with binary-heap, calendar-queue and
//!   hierarchical-timer-wheel implementations ([`EventQueue`],
//!   [`BinaryHeapQueue`], [`CalendarQueue`], [`TimerWheel`]);
//! * the engine itself ([`Engine`], [`Model`], [`Ctx`]) with cancellation,
//!   horizons, stop requests, and an event budget backstop;
//! * a bounded debugging trace ([`Trace`]).
//!
//! # Example
//!
//! ```
//! use desim::{Engine, Model, Ctx, SimTime, SimDuration};
//!
//! struct Counter { fired: u32 }
//! impl Model for Counter {
//!     type Event = ();
//!     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             ctx.schedule_in(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(Counter { fired: 0 }, 42);
//! eng.schedule_at(SimTime::ZERO, ());
//! eng.run();
//! assert_eq!(eng.model().fired, 3);
//! assert_eq!(eng.now(), SimTime::from_secs(2));
//! ```

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;
pub mod wheel;

pub use engine::{Ctx, Engine, EngineStats, EventId, Model, RunOutcome};
pub use queue::{BinaryHeapQueue, CalendarQueue, EventQueue, Scheduled};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceLevel, TraceRecord};
pub use wheel::TimerWheel;
