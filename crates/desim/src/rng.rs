//! Deterministic pseudo-random number generation for simulations.
//!
//! Every experiment in this workspace must be bit-reproducible from a single
//! `u64` seed, so we implement the generators ourselves instead of pulling in
//! `rand`: a [`SplitMix64`] seeder/stream-splitter and a [`Xoshiro256StarStar`]
//! workhorse generator (Blackman & Vigna, 2018). Both are tiny, fast, and
//! pass BigCrush-class test batteries, which is far more statistical quality
//! than a capacity-planning simulation needs.
//!
//! The key facility for reproducibility under model changes is *stream
//! splitting*: [`Rng::split`] derives an independent child generator, so each
//! simulated client/connection can own a private stream. Adding a new random
//! draw in one component then never perturbs the draws seen by another.

/// SplitMix64: a tiny 64-bit generator used to seed other generators and to
/// derive independent streams. One multiplication-free state increment per
/// draw with a strong output mix.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's workhorse generator.
///
/// 256 bits of state, period 2^256 − 1, equidistributed in 4 dimensions.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 as recommended by the authors (avoids the all-zero
    /// state and decorrelates nearby seeds).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the one fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but be defensive anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Xoshiro256StarStar { s }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The simulation RNG handle: an owned xoshiro256** stream with convenience
/// samplers for the primitive draws every model layer needs. Distribution
/// shapes (Pareto, lognormal, Zipf, …) live in the `workload` crate and take
/// `&mut Rng`.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: Xoshiro256StarStar,
    split_seq: u64,
    seed: u64,
}

impl Rng {
    /// Create the root stream for a simulation run.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256StarStar::new(seed),
            split_seq: 0,
            seed,
        }
    }

    /// The seed this stream (root or child) was created from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream.
    ///
    /// Children are keyed by (parent seed, split counter) through SplitMix64,
    /// so the k-th split of a given parent is stable across runs regardless
    /// of how many values the parent has drawn in between.
    pub fn split(&mut self) -> Rng {
        self.split_seq += 1;
        let mut mix = SplitMix64::new(self.seed ^ 0xA076_1D64_78BD_642F);
        // Fold the split counter in via two rounds for avalanche.
        let mut child_seed = mix.next_u64() ^ self.split_seq.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        child_seed ^= child_seed >> 32;
        Rng {
            inner: Xoshiro256StarStar::new(child_seed),
            split_seq: 0,
            seed: child_seed,
        }
    }

    /// Derive a child stream keyed by an explicit label instead of a counter.
    /// Useful when entities are created in model-dependent order but must
    /// keep stable streams (e.g. "client #42").
    pub fn split_labeled(&self, label: u64) -> Rng {
        let mut mix = SplitMix64::new(self.seed.rotate_left(17) ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let child_seed = mix.next_u64();
        Rng {
            inner: Xoshiro256StarStar::new(child_seed),
            split_seq: 0,
            seed: child_seed,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `(0, 1]`; safe to feed into `ln()`.
    #[inline]
    pub fn f64_open_left(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range_inclusive: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` of returning true.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len() as u64;
        for i in (1..n).rev() {
            let j = self.below(i + 1);
            xs.swap(i as usize, j as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open_left();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.below(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "Rng::below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = Rng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn splits_are_independent_of_parent_consumption() {
        // The k-th split must be identical whether or not the parent drew
        // values in between.
        let mut a = Rng::new(11);
        let mut b = Rng::new(11);
        for _ in 0..57 {
            b.next_u64();
        }
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }

    #[test]
    fn successive_splits_differ() {
        let mut root = Rng::new(12);
        let mut c1 = root.split();
        let mut c2 = root.split();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn labeled_splits_are_stable_and_distinct() {
        let root = Rng::new(77);
        let mut a1 = root.split_labeled(42);
        let mut a2 = root.split_labeled(42);
        let mut b = root.split_labeled(43);
        assert_eq!(a1.next_u64(), a2.next_u64());
        let same = (0..64).filter(|_| a1.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(8);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And with overwhelming probability not the identity.
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }
}
