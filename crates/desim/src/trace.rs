//! Lightweight simulation tracing.
//!
//! A bounded ring buffer of timestamped annotations that model code can emit
//! while debugging, with zero cost when disabled. Traces are plain strings —
//! this is a debugging aid, not a data channel; measurements belong in the
//! `metrics` crate.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Severity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    Debug,
    Info,
    Warn,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub time: SimTime,
    pub level: TraceLevel,
    pub message: String,
}

/// A bounded in-memory trace sink.
#[derive(Debug)]
pub struct Trace {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    min_level: TraceLevel,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A disabled trace: every emit is a cheap branch and nothing is stored.
    pub fn disabled() -> Self {
        Trace {
            records: VecDeque::new(),
            capacity: 0,
            min_level: TraceLevel::Warn,
            enabled: false,
            dropped: 0,
        }
    }

    /// An enabled trace holding at most `capacity` most-recent records at or
    /// above `min_level`.
    pub fn bounded(capacity: usize, min_level: TraceLevel) -> Self {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level,
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// True when records at `level` would be stored.
    #[inline]
    pub fn wants(&self, level: TraceLevel) -> bool {
        self.enabled && level >= self.min_level
    }

    /// Emit a record. Callers should gate expensive formatting on
    /// [`Trace::wants`].
    pub fn emit(&mut self, time: SimTime, level: TraceLevel, message: impl Into<String>) {
        if !self.wants(level) {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            level,
            message: message.into(),
        });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// How many records were evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained records as a multi-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for r in &self.records {
            let tag = match r.level {
                TraceLevel::Debug => "DBG",
                TraceLevel::Info => "INF",
                TraceLevel::Warn => "WRN",
            };
            let _ = writeln!(out, "[{:>14}] {} {}", format!("{}", r.time), tag, r.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_stores_nothing() {
        let mut t = Trace::disabled();
        t.emit(SimTime::ZERO, TraceLevel::Warn, "boom");
        assert_eq!(t.records().count(), 0);
        assert!(!t.wants(TraceLevel::Warn));
    }

    #[test]
    fn level_filtering() {
        let mut t = Trace::bounded(10, TraceLevel::Info);
        t.emit(SimTime::ZERO, TraceLevel::Debug, "quiet");
        t.emit(SimTime::ZERO, TraceLevel::Info, "kept");
        t.emit(SimTime::ZERO, TraceLevel::Warn, "kept too");
        assert_eq!(t.records().count(), 2);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::bounded(3, TraceLevel::Debug);
        for i in 0..5 {
            t.emit(SimTime::from_secs(i), TraceLevel::Info, format!("r{i}"));
        }
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["r2", "r3", "r4"]);
        assert_eq!(t.dropped(), 2);
        assert!(t.render().contains("2 earlier records dropped"));
    }

    #[test]
    fn render_includes_time_and_level() {
        let mut t = Trace::bounded(4, TraceLevel::Debug);
        t.emit(SimTime::from_millis(1500), TraceLevel::Warn, "hot");
        let s = t.render();
        assert!(s.contains("WRN"), "{s}");
        assert!(s.contains("1.500s"), "{s}");
    }
}
