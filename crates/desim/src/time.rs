//! Simulation time: a virtual clock with nanosecond resolution.
//!
//! All simulated experiments in this workspace run on a virtual clock that is
//! totally decoupled from wall time. `SimTime` is an instant on that clock and
//! `SimDuration` a span between instants. Both are thin wrappers over `u64`
//! nanoseconds, which gives us ~584 years of range — far beyond the 5-minute
//! runs the paper uses — while keeping ordering and arithmetic cheap and
//! total.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual simulation clock, in nanoseconds since the start
/// of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since origin as a float (lossy above 2^53 ns).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since origin as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; useful as an "infinite timeout" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and non-finite inputs clamp to zero; huge inputs saturate.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let n = s * NANOS_PER_SEC as f64;
        if n >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(n.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiply by a non-negative float factor, saturating.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= NANOS_PER_SEC {
            write!(f, "{:.3}s", n as f64 / NANOS_PER_SEC as f64)
        } else if n >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", n as f64 / NANOS_PER_MILLI as f64)
        } else if n >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", n as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_secs(9));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)).is_none());
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(5)),
            SimTime::MAX
        );
    }
}
