//! The discrete-event engine.
//!
//! The engine owns a virtual clock, a pending-event set, and a user-supplied
//! [`Model`]. Running the engine repeatedly pops the earliest pending event,
//! advances the clock to its timestamp, and hands it to the model, which may
//! schedule or cancel further events through the [`Ctx`] it receives.
//!
//! Determinism contract: with the same model, seed, and schedule of initial
//! events, two runs produce identical event sequences. This relies on
//! (a) stable FIFO tie-breaking in the queue, (b) the model drawing
//! randomness only from `Ctx::rng`, and (c) the model never consulting wall
//! time.

use crate::queue::{BinaryHeapQueue, EventQueue, Scheduled};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A simulation model: owns all domain state and reacts to events.
pub trait Model {
    /// The event alphabet of the model.
    type Event;

    /// Handle one event at its scheduled time. The model may schedule and
    /// cancel events, draw randomness, and request a stop via `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

/// Counters maintained by the engine, cheap enough to always collect.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Events delivered to the model.
    pub dispatched: u64,
    /// Events scheduled (including later-cancelled ones).
    pub scheduled: u64,
    /// Events cancelled before dispatch.
    pub cancelled: u64,
    /// High-water mark of the pending-event set.
    pub peak_pending: usize,
}

/// The mutable capability surface handed to the model while it handles an
/// event. Borrows the engine's clock, queue, RNG and stop flag.
pub struct Ctx<'a, E> {
    now: SimTime,
    seq: &'a mut u64,
    queue: &'a mut dyn EventQueue<E>,
    cancelled: &'a mut HashSet<u64>,
    rng: &'a mut Rng,
    stats: &'a mut EngineStats,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's root RNG stream. Models that need per-entity streams
    /// should `split()` children off this at entity creation.
    #[inline]
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past
    /// — delivering events before the current instant would violate
    /// causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "schedule_at: {} is before now ({})",
            at,
            self.now
        );
        *self.seq += 1;
        let seq = *self.seq;
        self.queue.push(Scheduled {
            time: at,
            seq,
            event,
        });
        self.stats.scheduled += 1;
        self.stats.peak_pending = self.stats.peak_pending.max(self.queue.len());
        EventId(seq)
    }

    /// Schedule `event` after a relative delay, saturating at the end of
    /// time (an event at `SimTime::MAX` will effectively never fire when the
    /// run has an earlier horizon).
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, event)
    }

    /// Schedule `event` at the current instant; it runs after all events
    /// already pending at this instant (FIFO tie-breaking).
    #[inline]
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancel a scheduled event. Returns true if the id was still pending.
    /// Cancelling an already-dispatched or already-cancelled id is a no-op
    /// returning false.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 > *self.seq {
            return false;
        }
        let fresh = self.cancelled.insert(id.0);
        if fresh {
            self.stats.cancelled += 1;
        }
        fresh
    }

    /// Ask the engine to stop after the current event completes.
    #[inline]
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The horizon passed; the clock stands at the horizon.
    HorizonReached,
    /// The model requested a stop.
    Stopped,
    /// The event budget was exhausted (runaway-model backstop).
    BudgetExhausted,
}

/// The discrete-event engine. Generic over the model and the pending-event
/// set implementation (binary heap by default).
pub struct Engine<M: Model, Q: EventQueue<<M as Model>::Event> = BinaryHeapQueue<<M as Model>::Event>> {
    now: SimTime,
    seq: u64,
    queue: Q,
    cancelled: HashSet<u64>,
    rng: Rng,
    stats: EngineStats,
    model: M,
    stop: bool,
    /// Hard cap on events dispatched in a single `run_*` call; guards
    /// against accidental infinite event loops in models under test.
    event_budget: u64,
}

impl<M: Model> Engine<M, BinaryHeapQueue<M::Event>> {
    /// Create an engine with the default binary-heap event list.
    pub fn new(model: M, seed: u64) -> Self {
        Engine::with_queue(model, seed, BinaryHeapQueue::new())
    }
}

impl<M: Model, Q: EventQueue<M::Event>> Engine<M, Q> {
    /// Create an engine with an explicit pending-event set implementation.
    pub fn with_queue(model: M, seed: u64, queue: Q) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue,
            cancelled: HashSet::new(),
            rng: Rng::new(seed),
            stats: EngineStats::default(),
            model,
            stop: false,
            event_budget: u64::MAX,
        }
    }

    /// Set a hard cap on dispatched events per run call.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Immutable access to the model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to harvest metrics between phases).
    #[inline]
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Number of pending (non-cancelled upper bound) events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event from outside the model (setup phase).
    pub fn schedule_at(&mut self, at: SimTime, event: M::Event) -> EventId {
        assert!(at >= self.now, "schedule_at in the past");
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.stats.scheduled += 1;
        self.stats.peak_pending = self.stats.peak_pending.max(self.queue.len());
        EventId(self.seq)
    }

    /// Schedule an event after a delay from the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: M::Event) -> EventId {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Timestamp of the earliest pending event (cancelled events may make
    /// this earlier than the next *delivered* event).
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run for a relative span from the current clock (see
    /// [`Engine::run_until`] for semantics).
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        self.run_until(self.now.saturating_add(span))
    }

    /// Dispatch exactly one event if one is pending. Returns false if the
    /// queue is drained.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(entry) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&entry.seq) {
                continue; // tombstoned
            }
            debug_assert!(entry.time >= self.now, "time ran backwards");
            self.now = entry.time;
            self.stats.dispatched += 1;
            let mut ctx = Ctx {
                now: self.now,
                seq: &mut self.seq,
                queue: &mut self.queue,
                cancelled: &mut self.cancelled,
                rng: &mut self.rng,
                stats: &mut self.stats,
                stop: &mut self.stop,
            };
            self.model.handle(&mut ctx, entry.event);
            return true;
        }
    }

    /// Run until the queue drains, the model stops the run, or the event
    /// budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until `horizon` (exclusive: events stamped exactly at the horizon
    /// do not fire), a drain, a stop request, or budget exhaustion. On
    /// `HorizonReached` the clock is advanced to the horizon so repeated
    /// phased runs observe a monotone clock.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.stop = false;
        let mut dispatched_this_run = 0u64;
        loop {
            if self.stop {
                return RunOutcome::Stopped;
            }
            if dispatched_this_run >= self.event_budget {
                return RunOutcome::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t >= horizon => {
                    if horizon != SimTime::MAX {
                        self.now = horizon;
                    }
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    if self.step() {
                        dispatched_this_run += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: a counter that reschedules itself `remaining` times with
    /// a fixed period, recording dispatch times.
    struct Ticker {
        remaining: u32,
        period: SimDuration,
        fired_at: Vec<SimTime>,
    }

    #[derive(Debug)]
    enum Tick {
        Tick,
    }

    impl Model for Ticker {
        type Event = Tick;
        fn handle(&mut self, ctx: &mut Ctx<'_, Tick>, _ev: Tick) {
            self.fired_at.push(ctx.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule_in(self.period, Tick::Tick);
            }
        }
    }

    #[test]
    fn ticker_fires_periodically() {
        let model = Ticker {
            remaining: 4,
            period: SimDuration::from_millis(10),
            fired_at: Vec::new(),
        };
        let mut eng = Engine::new(model, 1);
        eng.schedule_at(SimTime::from_millis(5), Tick::Tick);
        assert_eq!(eng.run(), RunOutcome::Drained);
        let times: Vec<u64> = eng
            .model()
            .fired_at
            .iter()
            .map(|t| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![5, 15, 25, 35, 45]);
        assert_eq!(eng.stats().dispatched, 5);
    }

    #[test]
    fn horizon_stops_and_clock_advances() {
        let model = Ticker {
            remaining: 1000,
            period: SimDuration::from_millis(1),
            fired_at: Vec::new(),
        };
        let mut eng = Engine::new(model, 1);
        eng.schedule_at(SimTime::ZERO, Tick::Tick);
        let outcome = eng.run_until(SimTime::from_millis(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(eng.now(), SimTime::from_millis(10));
        // Events at exactly the horizon do not fire.
        assert_eq!(eng.model().fired_at.len(), 10);
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            if ev == 3 {
                ctx.request_stop();
            } else {
                ctx.schedule_in(SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn model_can_request_stop() {
        let mut eng = Engine::new(Stopper, 0);
        eng.schedule_at(SimTime::ZERO, 0);
        assert_eq!(eng.run(), RunOutcome::Stopped);
        assert_eq!(eng.now(), SimTime::from_secs(3));
    }

    struct Recorder {
        seen: Vec<u32>,
    }
    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, _ctx: &mut Ctx<'_, u32>, ev: u32) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn same_time_events_dispatch_fifo() {
        let mut eng = Engine::new(Recorder { seen: vec![] }, 0);
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            eng.schedule_at(t, i);
        }
        eng.run();
        assert_eq!(eng.model().seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        struct Canceller {
            victim: Option<EventId>,
            seen: Vec<&'static str>,
        }
        #[derive(Debug)]
        enum Ev {
            Setup,
            Victim,
            Bystander,
        }
        impl Model for Canceller {
            type Event = Ev;
            fn handle(&mut self, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Setup => {
                        let id = ctx.schedule_in(SimDuration::from_secs(1), Ev::Victim);
                        ctx.schedule_in(SimDuration::from_secs(2), Ev::Bystander);
                        self.victim = Some(id);
                        assert!(ctx.cancel(id));
                        assert!(!ctx.cancel(id), "double-cancel must be a no-op");
                    }
                    Ev::Victim => self.seen.push("victim"),
                    Ev::Bystander => self.seen.push("bystander"),
                }
            }
        }
        let mut eng = Engine::new(
            Canceller {
                victim: None,
                seen: vec![],
            },
            0,
        );
        eng.schedule_at(SimTime::ZERO, Ev::Setup);
        eng.run();
        assert_eq!(eng.model().seen, vec!["bystander"]);
        assert_eq!(eng.stats().cancelled, 1);
    }

    #[test]
    fn event_budget_backstops_runaway_models() {
        struct Runaway;
        impl Model for Runaway {
            type Event = ();
            fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
                ctx.schedule_now(());
            }
        }
        let mut eng = Engine::new(Runaway, 0);
        eng.set_event_budget(1000);
        eng.schedule_at(SimTime::ZERO, ());
        assert_eq!(eng.run(), RunOutcome::BudgetExhausted);
        assert_eq!(eng.stats().dispatched, 1000);
    }

    #[test]
    #[should_panic(expected = "schedule_at")]
    fn scheduling_in_the_past_panics() {
        struct BadModel;
        impl Model for BadModel {
            type Event = ();
            fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut eng = Engine::new(BadModel, 0);
        eng.schedule_at(SimTime::from_secs(1), ());
        eng.run();
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        struct Sampler {
            draws: Vec<u64>,
        }
        impl Model for Sampler {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
                self.draws.push(ctx.rng().next_u64());
                if ev < 10 {
                    ctx.schedule_in(SimDuration::from_secs(1), ev + 1);
                }
            }
        }
        let run = |seed| {
            let mut eng = Engine::new(Sampler { draws: vec![] }, seed);
            eng.schedule_at(SimTime::ZERO, 0);
            eng.run();
            eng.into_model().draws
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn run_for_advances_relative_spans() {
        let model = Ticker {
            remaining: 100,
            period: SimDuration::from_millis(10),
            fired_at: Vec::new(),
        };
        let mut eng = Engine::new(model, 1);
        eng.schedule_at(SimTime::ZERO, Tick::Tick);
        assert_eq!(eng.run_for(SimDuration::from_millis(35)), RunOutcome::HorizonReached);
        assert_eq!(eng.now(), SimTime::from_millis(35));
        assert_eq!(eng.model().fired_at.len(), 4); // t = 0, 10, 20, 30
        eng.run_for(SimDuration::from_millis(30));
        assert_eq!(eng.now(), SimTime::from_millis(65));
        assert_eq!(eng.model().fired_at.len(), 7);
    }

    #[test]
    fn peek_next_time_tracks_queue() {
        let mut eng = Engine::new(Recorder { seen: vec![] }, 0);
        assert_eq!(eng.peek_next_time(), None);
        eng.schedule_at(SimTime::from_secs(3), 1);
        eng.schedule_at(SimTime::from_secs(1), 2);
        assert_eq!(eng.peek_next_time(), Some(SimTime::from_secs(1)));
        eng.step();
        assert_eq!(eng.peek_next_time(), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn phased_runs_resume_cleanly() {
        let model = Ticker {
            remaining: 100,
            period: SimDuration::from_millis(7),
            fired_at: Vec::new(),
        };
        let mut eng = Engine::new(model, 1);
        eng.schedule_at(SimTime::ZERO, Tick::Tick);
        eng.run_until(SimTime::from_millis(50));
        let mid = eng.model().fired_at.len();
        assert!(mid > 0 && mid < 101);
        eng.run_until(SimTime::from_secs(10));
        assert_eq!(eng.model().fired_at.len(), 101);
    }
}
