//! Pending-event set implementations.
//!
//! The engine is generic over its pending-event set so the classic
//! binary-heap future-event list can be compared against a calendar queue
//! (Brown, 1988) — the `ablate_selector`-style bench in `bench/` measures
//! both. Every implementation must be a *stable* priority queue: events with
//! equal timestamps dequeue in insertion order, which the engine relies on
//! for deterministic causality (see `engine::Engine`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: timestamp, a monotone sequence number for FIFO
/// tie-breaking, and the payload.
#[derive(Debug)]
pub struct Scheduled<E> {
    pub time: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reversed so BinaryHeap (a max-heap) pops the earliest entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending-event set: push timestamped events, pop them in nondecreasing
/// time order with FIFO tie-breaking.
pub trait EventQueue<E> {
    fn push(&mut self, entry: Scheduled<E>);
    fn pop(&mut self) -> Option<Scheduled<E>>;
    /// Timestamp of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The classic future-event list: a binary heap. O(log n) push/pop, great
/// constants, the default.
#[derive(Debug)]
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
}

impl<E> BinaryHeapQueue<E> {
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    #[inline]
    fn push(&mut self, entry: Scheduled<E>) {
        self.heap.push(entry);
    }

    #[inline]
    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A calendar queue (Brown 1988): an array of time buckets ("days") scanned
/// cyclically, with amortised O(1) push/pop when event-time increments are
/// well matched to the bucket width. Resizes itself when the population
/// drifts far from the bucket count.
///
/// Buckets hold sorted vectors; within a bucket, ties resolve by sequence
/// number, preserving the stability contract.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    bucket_width: u64,
    /// Index of the bucket the cursor is currently scanning.
    cursor: usize,
    /// Start time of the cursor's current "day".
    cursor_day_start: u64,
    len: usize,
    /// Resize thresholds.
    max_load: usize,
    min_load: usize,
}

impl<E> CalendarQueue<E> {
    pub fn new() -> Self {
        Self::with_buckets(16, 1_000_000) // 1 ms default day width
    }

    pub fn with_buckets(nbuckets: usize, bucket_width: u64) -> Self {
        assert!(nbuckets.is_power_of_two(), "bucket count must be a power of two");
        assert!(bucket_width > 0);
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            bucket_width,
            cursor: 0,
            cursor_day_start: 0,
            len: 0,
            max_load: nbuckets * 2,
            min_load: nbuckets / 2,
        }
    }

    fn bucket_index(&self, t: u64) -> usize {
        ((t / self.bucket_width) as usize) & (self.buckets.len() - 1)
    }

    fn insert_sorted(bucket: &mut Vec<Scheduled<E>>, entry: Scheduled<E>) {
        // Buckets are kept sorted ascending by (time, seq); binary search for
        // the insertion point.
        let pos = bucket
            .binary_search_by(|probe| {
                probe
                    .time
                    .cmp(&entry.time)
                    .then_with(|| probe.seq.cmp(&entry.seq))
            })
            .unwrap_err();
        bucket.insert(pos, entry);
    }

    fn resize(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.max(4).next_power_of_two();
        if nbuckets == self.buckets.len() {
            return;
        }
        let old: Vec<Scheduled<E>> = self
            .buckets
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.max_load = nbuckets * 2;
        self.min_load = nbuckets / 2;
        // Re-aim the cursor at the earliest pending event (or keep position).
        if let Some(min_t) = old.iter().map(|s| s.time.as_nanos()).min() {
            self.cursor_day_start = min_t - (min_t % self.bucket_width);
            self.cursor = self.bucket_index(min_t);
        }
        for entry in old {
            let idx = self.bucket_index(entry.time.as_nanos());
            Self::insert_sorted(&mut self.buckets[idx], entry);
        }
    }

    /// Find the globally earliest entry by full scan — used when the cursor
    /// has lapped the calendar without finding anything in the current year.
    fn earliest_bucket(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, b) in self.buckets.iter().enumerate() {
            if let Some(first) = b.first() {
                let key = (first.time, first.seq, i);
                if best.is_none_or(|b0| (key.0, key.1) < (b0.0, b0.1)) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, i)| i)
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, entry: Scheduled<E>) {
        let t = entry.time.as_nanos();
        let idx = self.bucket_index(t);
        Self::insert_sorted(&mut self.buckets[idx], entry);
        self.len += 1;
        // If a push lands before the cursor's current day, rewind the cursor
        // so we don't skip it.
        if t < self.cursor_day_start {
            self.cursor_day_start = t - (t % self.bucket_width);
            self.cursor = idx;
        }
        if self.len > self.max_load {
            let target = self.buckets.len() * 2;
            self.resize(target);
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        let year = self.bucket_width * nbuckets as u64;
        // Scan at most one full calendar year bucket by bucket.
        for step in 0..nbuckets {
            let idx = (self.cursor + step) & (nbuckets - 1);
            let day_start = self.cursor_day_start + step as u64 * self.bucket_width;
            let day_end = day_start + self.bucket_width;
            if let Some(first) = self.buckets[idx].first() {
                let t = first.time.as_nanos();
                if t < day_end {
                    let entry = self.buckets[idx].remove(0);
                    self.len -= 1;
                    self.cursor = idx;
                    self.cursor_day_start = day_start;
                    if self.len < self.min_load && nbuckets > 4 {
                        self.resize(nbuckets / 2);
                    }
                    return Some(entry);
                }
            }
        }
        // Nothing due this year: jump straight to the earliest entry.
        let idx = self.earliest_bucket().expect("len > 0 but no entries");
        let entry = self.buckets[idx].remove(0);
        self.len -= 1;
        let t = entry.time.as_nanos();
        self.cursor = idx;
        self.cursor_day_start = t - (t % self.bucket_width);
        // Suppress unused warning for `year` under future refactors.
        let _ = year;
        if self.len < self.min_load && nbuckets > 4 {
            self.resize(nbuckets / 2);
        }
        Some(entry)
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.earliest_bucket()
            .and_then(|i| self.buckets[i].first().map(|s| s.time))
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime::from_nanos(t),
            seq,
            event: t * 1000 + seq,
        }
    }

    fn drain<Q: EventQueue<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = q.pop() {
            out.push((s.time.as_nanos(), s.seq));
        }
        out
    }

    #[test]
    fn heap_orders_by_time_then_seq() {
        let mut q = BinaryHeapQueue::new();
        q.push(entry(5, 0));
        q.push(entry(3, 1));
        q.push(entry(5, 2));
        q.push(entry(1, 3));
        assert_eq!(drain(&mut q), vec![(1, 3), (3, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn calendar_orders_by_time_then_seq() {
        let mut q = CalendarQueue::with_buckets(8, 10);
        q.push(entry(5, 0));
        q.push(entry(3, 1));
        q.push(entry(5, 2));
        q.push(entry(1, 3));
        q.push(entry(1000, 4)); // far future, beyond one year
        assert_eq!(
            drain(&mut q),
            vec![(1, 3), (3, 1), (5, 0), (5, 2), (1000, 4)]
        );
    }

    #[test]
    fn calendar_handles_push_into_past() {
        let mut q = CalendarQueue::with_buckets(8, 10);
        q.push(entry(500, 0));
        assert_eq!(q.pop().unwrap().time.as_nanos(), 500);
        // Now push events earlier than the cursor day.
        q.push(entry(100, 1));
        q.push(entry(90, 2));
        assert_eq!(drain(&mut q), vec![(90, 2), (100, 1)]);
    }

    #[test]
    fn calendar_resizes_under_load() {
        let mut q = CalendarQueue::with_buckets(4, 10);
        for i in 0..1000 {
            q.push(entry(i * 7 % 997, i));
        }
        assert_eq!(q.len(), 1000);
        let drained = drain(&mut q);
        assert_eq!(drained.len(), 1000);
        for w in drained.windows(2) {
            assert!(w[0] <= w[1], "out of order: {w:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = BinaryHeapQueue::new();
        let mut c = CalendarQueue::with_buckets(8, 100);
        for i in 0..200u64 {
            let t = (i * 37) % 1009;
            h.push(entry(t, i));
            c.push(entry(t, i));
        }
        while let Some(pt) = h.peek_time() {
            assert_eq!(c.peek_time(), Some(pt));
            assert_eq!(h.pop().unwrap().time, pt);
            assert_eq!(c.pop().unwrap().time, pt);
        }
        assert!(c.pop().is_none());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
        let mut c: CalendarQueue<u64> = CalendarQueue::new();
        assert!(c.is_empty());
        assert_eq!(c.peek_time(), None);
        assert!(c.pop().is_none());
    }
}
