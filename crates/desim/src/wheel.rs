//! Hierarchical timing wheel — the third pending-event-set backend.
//!
//! Kernel-style timer wheels (Varghese & Lauck, 1987) trade the heap's
//! O(log n) ordering work for O(1) insertion into a time-bucketed wheel
//! hierarchy: a fine wheel of `SLOTS` buckets at base resolution, then
//! coarser wheels each `SLOTS`× wider. Popping cascades a coarse bucket
//! down into finer wheels when the cursor reaches it. Great when most
//! timers are short (socket timeouts, think timers) — exactly the
//! simulation's event mix.
//!
//! Stability contract (FIFO within a timestamp) is preserved: buckets keep
//! insertion order and cascade sorts by `(time, seq)` before redistribution.
//!
//! Trade-off note: `peek_time` is a full scan — the wheel shines when driven
//! by `pop()` (drain loops, benches); the engine's `run_until`, which peeks
//! every iteration, should keep the default binary heap.

use crate::queue::{EventQueue, Scheduled};
use crate::time::SimTime;
use std::collections::VecDeque;

const SLOTS: usize = 64;
const LEVELS: usize = 8;

/// A hierarchical timing wheel over `u64` nanoseconds.
///
/// `resolution` is the width of a level-0 slot in nanoseconds; level `k`
/// slots are `resolution × SLOTS^k` wide. With the default 1 µs resolution
/// and 8 levels the wheel spans ~280 years — any event beyond the hierarchy
/// lands in an overflow list consulted on cascade.
#[derive(Debug)]
pub struct TimerWheel<E> {
    resolution: u64,
    /// wheels[level][slot]
    wheels: Vec<Vec<VecDeque<Scheduled<E>>>>,
    /// Absolute time the cursor has processed up to (exclusive).
    horizon: u64,
    len: usize,
    /// Events too far out for the hierarchy (rare).
    overflow: Vec<Scheduled<E>>,
}

impl<E> TimerWheel<E> {
    /// Wheel with 1 µs base resolution.
    pub fn new() -> Self {
        Self::with_resolution(1_000)
    }

    /// Wheel with an explicit base slot width (nanoseconds).
    pub fn with_resolution(resolution: u64) -> Self {
        assert!(resolution > 0);
        TimerWheel {
            resolution,
            wheels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| VecDeque::new()).collect())
                .collect(),
            horizon: 0,
            len: 0,
            overflow: Vec::new(),
        }
    }

    /// Width of one slot at `level`.
    fn slot_width(&self, level: usize) -> u64 {
        self.resolution.saturating_mul((SLOTS as u64).saturating_pow(level as u32))
    }

    /// Span of the whole wheel at `level` (slot width × SLOTS).
    fn level_span(&self, level: usize) -> u64 {
        self.slot_width(level).saturating_mul(SLOTS as u64)
    }

    /// Place an entry into the correct wheel/slot relative to the horizon.
    fn place(&mut self, entry: Scheduled<E>) {
        let t = entry.time.as_nanos();
        debug_assert!(t >= self.horizon.saturating_sub(self.resolution));
        let delta = t.saturating_sub(self.horizon);
        for level in 0..LEVELS {
            if delta < self.level_span(level) {
                let slot = ((t / self.slot_width(level)) % SLOTS as u64) as usize;
                self.wheels[level][slot].push_back(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Advance the horizon one level-0 slot, cascading coarser buckets as
    /// their boundaries are crossed.
    fn advance_one_slot(&mut self) {
        self.horizon += self.resolution;
        // When the level-0 cursor wraps, pull down the next level-1 bucket,
        // and so on up the hierarchy.
        for level in 1..LEVELS {
            if self.horizon.is_multiple_of(self.slot_width(level)) {
                let slot = ((self.horizon / self.slot_width(level)) % SLOTS as u64) as usize;
                let mut bucket: Vec<Scheduled<E>> =
                    self.wheels[level][slot].drain(..).collect();
                for entry in bucket.drain(..) {
                    // Redistribute into finer wheels; events a full lap out
                    // stay at this level.
                    let t = entry.time.as_nanos();
                    let delta = t.saturating_sub(self.horizon);
                    let target = (0..level).find(|&l| delta < self.level_span(l));
                    match target {
                        Some(l) => {
                            let s = ((t / self.slot_width(l)) % SLOTS as u64) as usize;
                            self.wheels[l][s].push_back(entry);
                        }
                        None => self.wheels[level][slot].push_back(entry),
                    }
                }
            } else {
                break;
            }
        }
        // Overflow entries that have come into range get re-placed.
        if !self.overflow.is_empty() {
            let top_span = self.level_span(LEVELS - 1);
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i]
                    .time
                    .as_nanos()
                    .saturating_sub(self.horizon)
                    < top_span
                {
                    let e = self.overflow.swap_remove(i);
                    self.place(e);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Drain the current level-0 slot sorted by (time, seq).
    fn take_current_slot(&mut self) -> Vec<Scheduled<E>> {
        let slot = ((self.horizon / self.resolution) % SLOTS as u64) as usize;
        let mut out: Vec<Scheduled<E>> = self.wheels[0][slot].drain(..).collect();
        out.sort_by(|a, b| a.time.cmp(&b.time).then(a.seq.cmp(&b.seq)));
        out
    }
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for TimerWheel<E> {
    fn push(&mut self, entry: Scheduled<E>) {
        self.len += 1;
        self.place(entry);
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Current slot first (events at or after the horizon, within
            // one slot width).
            let mut slot = self.take_current_slot();
            if !slot.is_empty() {
                // Pop the earliest; push the rest back preserving order.
                let head = slot.remove(0);
                let slot_idx = ((self.horizon / self.resolution) % SLOTS as u64) as usize;
                for e in slot.into_iter().rev() {
                    self.wheels[0][slot_idx].push_front(e);
                }
                self.len -= 1;
                return Some(head);
            }
            self.advance_one_slot();
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // A wheel has no cheap global min; scan level-0 from the cursor and
        // fall back to a full scan. Fine for the engine, which calls
        // peek_time once per dispatch at most.
        let mut best: Option<SimTime> = None;
        for level in &self.wheels {
            for bucket in level {
                for e in bucket {
                    if best.is_none_or(|b| e.time < b) {
                        best = Some(e.time);
                    }
                }
            }
        }
        for e in &self.overflow {
            if best.is_none_or(|b| e.time < b) {
                best = Some(e.time);
            }
        }
        best
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::BinaryHeapQueue;

    fn entry(t: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime::from_nanos(t),
            seq,
            event: seq,
        }
    }

    fn drain<Q: EventQueue<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = q.pop() {
            out.push((s.time.as_nanos(), s.seq));
        }
        out
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut w = TimerWheel::with_resolution(10);
        w.push(entry(500, 0));
        w.push(entry(30, 1));
        w.push(entry(500, 2));
        w.push(entry(0, 3));
        assert_eq!(drain(&mut w), vec![(0, 3), (30, 1), (500, 0), (500, 2)]);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = TimerWheel::with_resolution(10);
        // Level-0 span = 640 ns; these land in level 1+.
        w.push(entry(10_000, 0));
        w.push(entry(700, 1));
        w.push(entry(50_000, 2));
        w.push(entry(5, 3));
        assert_eq!(
            drain(&mut w),
            vec![(5, 3), (700, 1), (10_000, 0), (50_000, 2)]
        );
    }

    #[test]
    fn far_future_overflow_events_survive() {
        let mut w = TimerWheel::with_resolution(1);
        // Span of the full hierarchy at res 1 ns = 64^8 ns ≈ 281 s... huge;
        // force overflow with a coarse check using u64::MAX-ish times being
        // clamped by saturating math.
        w.push(entry(1, 0));
        w.push(entry(u64::MAX / 2, 1));
        let first = w.pop().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(w.len(), 1);
        // The far event is still tracked (peek sees it).
        assert_eq!(
            w.peek_time(),
            Some(SimTime::from_nanos(u64::MAX / 2))
        );
    }

    #[test]
    fn matches_heap_on_random_mix() {
        let mut rng = crate::rng::Rng::new(42);
        let mut wheel = TimerWheel::with_resolution(100);
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        for i in 0..2_000u64 {
            let t = rng.below(10_000_000);
            wheel.push(entry(t, i));
            heap.push(entry(t, i));
        }
        assert_eq!(drain(&mut wheel), drain(&mut heap));
    }

    #[test]
    fn interleaved_push_pop_monotone() {
        let mut rng = crate::rng::Rng::new(7);
        let mut w = TimerWheel::with_resolution(50);
        let mut last = 0u64;
        let mut seq = 0u64;
        let mut pending = 0usize;
        for _ in 0..3_000 {
            if pending == 0 || rng.chance(0.6) {
                // New events must not be scheduled before the last pop
                // (causality, as the engine guarantees).
                seq += 1;
                let t = last + rng.below(100_000);
                w.push(entry(t, seq));
                pending += 1;
            } else {
                let e = w.pop().unwrap();
                assert!(e.time.as_nanos() >= last, "time went backwards");
                last = e.time.as_nanos();
                pending -= 1;
            }
            assert_eq!(w.len(), pending);
        }
    }

    #[test]
    fn empty_wheel() {
        let mut w: TimerWheel<u64> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_time(), None);
    }
}
