//! Property-based tests for the DES kernel: queue ordering equivalence,
//! causality, and RNG stream independence.

use desim::{
    BinaryHeapQueue, CalendarQueue, Ctx, Engine, EventQueue, Model, Rng, Scheduled, SimDuration,
    SimTime, TimerWheel,
};
use proptest::prelude::*;

/// A model that records (time, payload) for every dispatched event and
/// schedules nothing new — used to observe raw dispatch order.
struct Observer {
    seen: Vec<(u64, u64)>,
}

impl Model for Observer {
    type Event = u64;
    fn handle(&mut self, ctx: &mut Ctx<'_, u64>, ev: u64) {
        self.seen.push((ctx.now().as_nanos(), ev));
    }
}

proptest! {
    /// The two queue implementations dispatch identical sequences for any
    /// mix of timestamps, including heavy ties.
    #[test]
    fn queues_agree(times in proptest::collection::vec(0u64..10_000, 0..300)) {
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::with_buckets(8, 64);
        let mut wheel: TimerWheel<u64> = TimerWheel::with_resolution(32);
        for (i, &t) in times.iter().enumerate() {
            let entry = || Scheduled { time: SimTime::from_nanos(t), seq: i as u64, event: i as u64 };
            heap.push(entry());
            cal.push(entry());
            wheel.push(entry());
        }
        loop {
            match (heap.pop(), cal.pop(), wheel.pop()) {
                (None, None, None) => break,
                (Some(a), Some(b), Some(c)) => {
                    prop_assert_eq!(a.time, b.time);
                    prop_assert_eq!(a.seq, b.seq);
                    prop_assert_eq!(a.event, b.event);
                    prop_assert_eq!(a.time, c.time);
                    prop_assert_eq!(a.seq, c.seq);
                }
                (a, b, c) => prop_assert!(false,
                    "length mismatch: {:?}/{:?}/{:?}", a.is_some(), b.is_some(), c.is_some()),
            }
        }
    }

    /// Dispatch order is nondecreasing in time, and FIFO within equal times,
    /// regardless of the insertion order.
    #[test]
    fn dispatch_is_causal(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut eng = Engine::new(Observer { seen: vec![] }, 0);
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), i as u64);
        }
        eng.run();
        let seen = &eng.model().seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time ran backwards: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}: {:?}", w[0].0, w);
            }
        }
    }

    /// Interleaved push/pop on the calendar queue never loses or reorders
    /// events relative to the heap, even when pushes land in the "past"
    /// relative to the cursor.
    #[test]
    fn calendar_interleaved_matches_heap(
        ops in proptest::collection::vec((0u64..5_000, any::<bool>()), 1..400)
    ) {
        let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::with_buckets(4, 100);
        let mut seq = 0u64;
        for &(t, is_pop) in &ops {
            if is_pop {
                let a = heap.pop();
                let b = cal.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        prop_assert_eq!(x.time, y.time);
                        prop_assert_eq!(x.seq, y.seq);
                    }
                    _ => prop_assert!(false, "pop mismatch"),
                }
            } else {
                seq += 1;
                heap.push(Scheduled { time: SimTime::from_nanos(t), seq, event: seq });
                cal.push(Scheduled { time: SimTime::from_nanos(t), seq, event: seq });
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
    }

    /// Labeled RNG streams: the same label always yields the same stream and
    /// different labels yield streams that differ somewhere early.
    #[test]
    fn labeled_streams_stable(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let root = Rng::new(seed);
        let mut s1 = root.split_labeled(a);
        let mut s2 = root.split_labeled(a);
        for _ in 0..16 {
            prop_assert_eq!(s1.next_u64(), s2.next_u64());
        }
        if a != b {
            let mut t1 = root.split_labeled(a);
            let mut t2 = root.split_labeled(b);
            let all_same = (0..16).all(|_| t1.next_u64() == t2.next_u64());
            prop_assert!(!all_same, "distinct labels produced identical prefixes");
        }
    }

    /// below(n) is always < n for arbitrary nonzero bounds.
    #[test]
    fn below_bound_respected(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Engine reproducibility: two engines with identical seeds and initial
    /// schedules dispatch identical sequences through a model that also
    /// consumes randomness.
    #[test]
    fn engine_runs_reproducible(seed in any::<u64>(), n in 1usize..50) {
        struct Jitterer { seen: Vec<(u64, u64)> }
        impl Model for Jitterer {
            type Event = u64;
            fn handle(&mut self, ctx: &mut Ctx<'_, u64>, ev: u64) {
                let draw = ctx.rng().below(1000);
                self.seen.push((ctx.now().as_nanos(), ev ^ draw));
                if ev < 20 {
                    ctx.schedule_in(SimDuration::from_nanos(draw + 1), ev + 1);
                }
            }
        }
        let run = || {
            let mut eng = Engine::new(Jitterer { seen: vec![] }, seed);
            for i in 0..n {
                eng.schedule_at(SimTime::from_nanos(i as u64 * 3), i as u64);
            }
            eng.run();
            eng.into_model().seen
        };
        prop_assert_eq!(run(), run());
    }
}
