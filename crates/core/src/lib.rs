//! # eventscale
//!
//! A from-scratch Rust reproduction of *“Evaluating the Scalability of Java
//! Event-Driven Web Servers”* (Beltran, Carrera, Torres, Ayguadé — ICPP
//! 2004): the paper that asked whether Java NIO's readiness selection lets
//! an event-driven server with **one or two worker threads** match a
//! native, multithreaded Apache with **thousands** of threads.
//!
//! The workspace provides two parallel instantiations of the study:
//!
//! * a **deterministic discrete-event simulation** of the paper's entire
//!   testbed — 4-way SMP SUT, crossover links, httperf client farms —
//!   that regenerates every figure of the evaluation
//!   ([`experiments`], [`serversim`], [`netsim`], [`hostsim`],
//!   [`clientsim`], [`workload`], [`desim`]);
//! * a **live layer** — a real epoll-reactor HTTP server
//!   ([`nioserver`]), a real blocking thread-pool HTTP server
//!   ([`poolserver`]) and a real httperf-style load generator
//!   ([`loadgen`]) over [`httpcore`] and [`reactor`] — exercising the same
//!   architectural contrast over actual sockets.
//!
//! ## Quickstart: compare the two architectures in simulation
//!
//! ```
//! use eventscale::prelude::*;
//!
//! let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
//! let mut cfg = TestbedConfig::paper_default(
//!     ServerArch::EventDriven { workers: 1 }, /* cpus = */ 1, link);
//! cfg.num_clients = 150;
//! cfg.duration = SimDuration::from_secs(15);
//! cfg.warmup = SimDuration::from_secs(5);
//!
//! let result = eventscale::run_experiment(cfg);
//! assert!(result.throughput_rps > 0.0);
//! assert_eq!(result.errors.connection_reset, 0); // nio never resets
//! ```
//!
//! ## Regenerating a paper figure
//!
//! ```no_run
//! use eventscale::prelude::*;
//!
//! let mut campaign = Campaign::new(Scale::paper());
//! let fig = campaign.build("fig1a");
//! println!("{}", fig.render());
//! for check in eventscale::experiments::check_figure(&fig) {
//!     assert!(check.pass, "{}: {}", check.name, check.detail);
//! }
//! ```

pub use clientsim;
pub use desim;
pub use experiments;
pub use hostsim;
pub use httpcore;
pub use loadgen;
pub use metrics;
pub use netsim;
pub use obs;
#[cfg(target_os = "linux")]
pub use nioserver;
#[cfg(target_os = "linux")]
pub use poolserver;
pub use reactor;
pub use serversim;
pub use workload;

pub use experiments::{Campaign, Scale};
pub use serversim::{RunResult, ServerArch, TestbedConfig};

/// Run one simulated experiment and summarise it.
pub fn run_experiment(cfg: TestbedConfig) -> RunResult {
    let sim_secs = cfg.duration.as_secs_f64();
    let tb = serversim::run(cfg.clone());
    RunResult::from_testbed(&cfg, &tb, sim_secs)
}

/// Commonly used types, one import away.
pub mod prelude {
    pub use crate::run_experiment;
    pub use clientsim::{Client, ClientAction, ClientConfig, ClientId, ClientMetrics};
    pub use desim::{Engine, Model, Rng, SimDuration, SimTime};
    pub use experiments::{check_figure, render_checks, Campaign, Figure, Metric, Scale};
    pub use hostsim::{Cpu, CpuCosts};
    pub use metrics::{ClientError, ErrorCounters, Histogram, Summary, WindowedSeries};
    pub use netsim::{LinkConfig, PsLink};
    pub use serversim::{RunResult, ServerArch, TestbedConfig};
    pub use workload::{FileSet, SessionConfig, SessionPlan, SurgeConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn run_experiment_smoke() {
        let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
        let mut cfg =
            TestbedConfig::paper_default(ServerArch::Threaded { pool: 64 }, 1, link);
        cfg.num_clients = 50;
        cfg.duration = SimDuration::from_secs(10);
        cfg.warmup = SimDuration::from_secs(3);
        let r = crate::run_experiment(cfg);
        assert!(r.throughput_rps > 0.0);
        assert_eq!(r.label, "httpd-64t");
    }
}
