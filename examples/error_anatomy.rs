//! Error anatomy: reproduce figure 3's error taxonomy and show *why* each
//! error family exists, by sweeping the threaded server's idle timeout.
//!
//! The paper's figure 3(b) shows connection resets growing linearly with
//! client count for Apache and staying at zero for nio. The mechanism is
//! the idle timeout: Pareto think times have a tail, and every think longer
//! than the timeout costs one reset. This example sweeps that timeout and
//! compares the measured reset rate with the closed-form prediction
//! `clients × think_rate × P(think > timeout)` from the workload model.
//!
//! Run with: `cargo run --release --example error_anatomy`

use eventscale::prelude::*;
use metrics::{fnum, Align, Table};

fn main() {
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let clients = 800;
    let session = SessionConfig::default();

    let mut table = Table::new(&[
        ("idle timeout", Align::Left),
        ("resets/s measured", Align::Right),
        ("resets/s predicted", Align::Right),
        ("timeouts/s", Align::Right),
        ("replies/s", Align::Right),
    ]);

    for timeout_s in [5u64, 15, 60] {
        let mut cfg =
            TestbedConfig::paper_default(ServerArch::Threaded { pool: 2048 }, 1, link);
        cfg.num_clients = clients;
        cfg.duration = SimDuration::from_secs(40);
        cfg.warmup = SimDuration::from_secs(10);
        cfg.server_idle_timeout = Some(SimDuration::from_secs(timeout_s));
        let r = run_experiment(cfg);

        // Closed-form prediction from the workload model: every think gap
        // that outlasts the timeout produces one reset. A session of mean
        // B bursts has B−1 gaps over its mean duration.
        let p_exceed = session.think_exceeds_prob(timeout_s as f64);
        // Estimate think gaps per client-second from the measured reply
        // rate: gaps ≈ replies × (bursts−1)/requests ≈ replies × 0.43.
        let gaps_per_s = r.throughput_rps * 0.43;
        let predicted = gaps_per_s * p_exceed;

        table.row(vec![
            format!("{timeout_s} s"),
            fnum(r.conn_reset_per_s, 2),
            fnum(predicted, 2),
            fnum(r.client_timeout_per_s, 2),
            fnum(r.throughput_rps, 0),
        ]);
    }

    // And the event-driven server: no timeout to sweep — it has none.
    let mut cfg = TestbedConfig::paper_default(ServerArch::EventDriven { workers: 1 }, 1, link);
    cfg.num_clients = clients;
    cfg.duration = SimDuration::from_secs(40);
    cfg.warmup = SimDuration::from_secs(10);
    let r = run_experiment(cfg);
    table.row(vec![
        "event-driven (none)".to_string(),
        fnum(r.conn_reset_per_s, 2),
        "0.00".to_string(),
        fnum(r.client_timeout_per_s, 2),
        fnum(r.throughput_rps, 0),
    ]);

    println!(
        "{clients} clients, threaded server, idle-timeout sweep \
         (P(think > t): 5s={:.3}, 15s={:.3}, 60s={:.3}):\n",
        session.think_exceeds_prob(5.0),
        session.think_exceeds_prob(15.0),
        session.think_exceeds_prob(60.0),
    );
    println!("{}", table.render());
    println!(
        "Shorter idle timeouts reclaim threads faster but reset more\n\
         thinking clients; the event-driven server simply opts out of the\n\
         trade-off — its row is structurally zero."
    );
}
