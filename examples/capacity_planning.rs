//! Capacity planning: the downstream question the paper's study answers.
//!
//! "We expect N concurrent users with web-like sessions. How many pool
//! threads does a blocking server need to hold them — and what does the
//! event-driven server need instead?" This example sweeps the pool size at
//! a fixed 2 000-client load and shows where throughput, connection time,
//! and error rates land, next to a one-worker event-driven server on the
//! same machine.
//!
//! Run with: `cargo run --release --example capacity_planning`

use eventscale::prelude::*;
use metrics::{fnum, Align, Table};

const CLIENTS: u32 = 2000;

fn run(server: ServerArch) -> RunResult {
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let mut cfg = TestbedConfig::paper_default(server, 1, link);
    cfg.num_clients = CLIENTS;
    cfg.duration = SimDuration::from_secs(40);
    cfg.warmup = SimDuration::from_secs(10);
    run_experiment(cfg)
}

fn main() {
    let mut table = Table::new(&[
        ("configuration", Align::Left),
        ("replies/s", Align::Right),
        ("connect ms", Align::Right),
        ("timeouts/s", Align::Right),
        ("resets/s", Align::Right),
        ("sessions aborted", Align::Right),
    ]);

    println!("planning for {CLIENTS} concurrent clients (1 CPU, 1 Gbit):\n");

    for pool in [256, 512, 1024, 2048, 4096] {
        let r = run(ServerArch::Threaded { pool });
        table.row(vec![
            format!("threaded, {pool} threads"),
            fnum(r.throughput_rps, 0),
            fnum(r.mean_connect_ms, 2),
            fnum(r.client_timeout_per_s, 2),
            fnum(r.conn_reset_per_s, 2),
            r.sessions_aborted.to_string(),
        ]);
    }
    let r = run(ServerArch::EventDriven { workers: 1 });
    table.row(vec![
        "event-driven, 1 worker".to_string(),
        fnum(r.throughput_rps, 0),
        fnum(r.mean_connect_ms, 2),
        fnum(r.client_timeout_per_s, 2),
        fnum(r.conn_reset_per_s, 2),
        r.sessions_aborted.to_string(),
    ]);

    println!("{}", table.render());
    println!(
        "Reading: the pool must grow past the concurrent-client count before\n\
         the threaded server stops choking on connection establishment — the\n\
         event-driven server holds every client with one worker thread."
    );
}
