//! Live showdown: the paper's comparison over real sockets.
//!
//! Starts the real epoll-reactor server (1 worker) and the real blocking
//! thread-pool server (64 threads) on loopback, drives each with the
//! httperf-style load generator for a few seconds under the same SURGE
//! session workload, and prints both reports side by side.
//!
//! Run with: `cargo run --release --example live_showdown`

use desim::Rng;
use httpcore::ContentStore;
use metrics::{fnum, Align, Table};
use std::sync::Arc;
use std::time::Duration;
use workload::{FileSet, SurgeConfig};

fn main() {
    // Shared content: a small SURGE tree (capped tail so runs stay quick).
    let mut rng = Rng::new(2004);
    let files = FileSet::build(
        &SurgeConfig {
            num_files: 500,
            tail_cap: 200_000.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    let content = Arc::new(ContentStore::from_fileset(&files));

    let load = loadgen::LoadConfig {
        clients: 32,
        duration: Duration::from_secs(4),
        client_timeout: Duration::from_secs(5),
        // Compress think times so a 4 s run holds many full sessions.
        think_scale: 0.02,
        ..loadgen::LoadConfig::default()
    };

    let mut table = Table::new(&[
        ("server", Align::Left),
        ("replies/s", Align::Right),
        ("mean resp ms", Align::Right),
        ("p99 resp ms", Align::Right),
        ("mean conn ms", Align::Right),
        ("resets", Align::Right),
        ("timeouts", Align::Right),
        ("sessions ok", Align::Right),
    ]);

    // --- event-driven server, one worker thread ---
    {
        let server = nioserver::NioServer::start(nioserver::NioConfig {
            workers: 1,
            backend: nioserver::BackendKind::from_env(),
            accept: nioserver::AcceptMode::from_env(),
            shed_watermark: None,
            lifecycle: httpcore::LifecyclePolicy::default(),
            content: Arc::clone(&content),
        })
        .expect("start nio server");
        let cfg = loadgen::LoadConfig {
            target: server.addr(),
            ..load.clone()
        };
        let report = loadgen::run(&cfg, &files);
        push_row(&mut table, "nio (1 worker)", &report);
        server.shutdown();
    }

    // --- threaded server, 64-thread pool, 2 s idle timeout ---
    {
        let server = poolserver::PoolServer::start(poolserver::PoolConfig {
            pool_size: 64,
            lifecycle: httpcore::LifecyclePolicy {
                idle_timeout: Some(Duration::from_secs(2)),
                ..httpcore::LifecyclePolicy::default()
            },
            shed_watermark: None,
            content: Arc::clone(&content),
        })
        .expect("start pool server");
        let cfg = loadgen::LoadConfig {
            target: server.addr(),
            ..load.clone()
        };
        let report = loadgen::run(&cfg, &files);
        push_row(&mut table, "httpd (64 threads)", &report);
        server.shutdown();
    }

    println!("32 live clients over loopback, 4 s runs, SURGE sessions:");
    println!();
    println!("{}", table.render());
}

fn push_row(table: &mut metrics::Table, label: &str, r: &loadgen::LoadReport) {
    table.row(vec![
        label.to_string(),
        fnum(r.throughput_rps(), 0),
        fnum(r.response_time_us.mean() / 1000.0, 2),
        fnum(r.response_time_us.quantile(0.99) as f64 / 1000.0, 2),
        fnum(r.connect_time_us.mean() / 1000.0, 2),
        r.errors.connection_reset.to_string(),
        r.errors.client_timeout.to_string(),
        r.sessions_completed.to_string(),
    ]);
}
