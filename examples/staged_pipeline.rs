//! The paper's closing conjecture, tested: "Dividing the server in
//! pipelined stages, adding one or more threads to each stage and assigning
//! a processor affinity to each thread can convert a multiprocessor ... in
//! a real high-scalable request processing pipeline."
//!
//! This example runs the 4-way SMP saturation point with the flat
//! event-driven server (2 workers — the paper's best), the threaded server
//! (4096 threads), and the staged pipeline at several stage-thread splits,
//! showing where the pipeline's balance point lies.
//!
//! Run with: `cargo run --release --example staged_pipeline`

use eventscale::prelude::*;
use metrics::{fnum, Align, Table};

fn run(server: ServerArch) -> RunResult {
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let mut cfg = TestbedConfig::paper_default(server, 4, link);
    cfg.num_clients = 6000;
    cfg.duration = SimDuration::from_secs(40);
    cfg.warmup = SimDuration::from_secs(10);
    run_experiment(cfg)
}

fn main() {
    let mut table = Table::new(&[
        ("configuration", Align::Left),
        ("replies/s", Align::Right),
        ("response ms", Align::Right),
        ("cpu util", Align::Right),
    ]);

    println!("6000 clients, 4 CPUs, 1 Gbit (the paper's SMP saturation point):\n");

    for (label, server) in [
        ("flat nio, 2 workers", ServerArch::EventDriven { workers: 2 }),
        ("httpd, 4096 threads", ServerArch::Threaded { pool: 4096 }),
        (
            "staged 1 parse + 1 send",
            ServerArch::Staged {
                parse_threads: 1,
                send_threads: 1,
            },
        ),
        (
            "staged 1 parse + 3 send",
            ServerArch::Staged {
                parse_threads: 1,
                send_threads: 3,
            },
        ),
        (
            "staged 2 parse + 2 send",
            ServerArch::Staged {
                parse_threads: 2,
                send_threads: 2,
            },
        ),
    ] {
        let r = run(server);
        table.row(vec![
            label.to_string(),
            fnum(r.throughput_rps, 0),
            fnum(r.mean_response_ms, 1),
            fnum(r.cpu_utilisation, 2),
        ]);
    }

    println!("{}", table.render());
    println!(
        "The pipeline wins when its stage threads match the stage work\n\
         (sending dominates for web replies, so the send stage needs the\n\
         threads) — and processor affinity cuts the cross-CPU contention\n\
         that capped the flat selector server. The conjecture holds."
    );
}
