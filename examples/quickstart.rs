//! Quickstart: simulate the paper's core comparison at laptop scale.
//!
//! Runs the event-driven server (1 worker thread) and the threaded server
//! (1024-thread pool) against the same 600-client SURGE workload on a
//! uniprocessor with a 1 Gbit link, then prints the httperf-style summary
//! for each — the numbers behind figures 1–4.
//!
//! Run with: `cargo run --release --example quickstart`

use eventscale::prelude::*;
use metrics::{fnum, Align, Table};

fn main() {
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let scenarios = [
        ServerArch::EventDriven { workers: 1 },
        ServerArch::Threaded { pool: 1024 },
    ];

    let mut table = Table::new(&[
        ("server", Align::Left),
        ("replies/s", Align::Right),
        ("response ms", Align::Right),
        ("connect ms", Align::Right),
        ("timeouts/s", Align::Right),
        ("resets/s", Align::Right),
        ("cpu util", Align::Right),
    ]);

    for server in scenarios {
        let mut cfg = TestbedConfig::paper_default(server, 1, link);
        cfg.num_clients = 600;
        cfg.duration = SimDuration::from_secs(30);
        cfg.warmup = SimDuration::from_secs(8);
        let r = run_experiment(cfg);
        table.row(vec![
            r.label.clone(),
            fnum(r.throughput_rps, 0),
            fnum(r.mean_response_ms, 2),
            fnum(r.mean_connect_ms, 2),
            fnum(r.client_timeout_per_s, 2),
            fnum(r.conn_reset_per_s, 2),
            fnum(r.cpu_utilisation, 2),
        ]);
    }

    println!("600 concurrent SURGE clients, 1 CPU, 1 Gbit link, 30 s:");
    println!();
    println!("{}", table.render());
    println!(
        "The event-driven server matches the 1024-thread pool with a single\n\
         worker thread — and produces zero connection resets, because it\n\
         never needs to disconnect idle clients to reclaim a thread."
    );
}
