//! Cross-backend corpus replay: every persisted sequence under
//! `tests/corpus/*.seq` must produce the oracle-predicted outcome with the
//! nio legs running on every *available* reactor backend — not just the
//! epoll default that `conformance_corpus.rs` pins.
//!
//! mock-completion always runs (it needs nothing from the kernel — that is
//! its whole point as the tier-1 stand-in for completion semantics);
//! io_uring runs when the runtime probe gets a ring and silently skips
//! when the kernel refuses (ENOSYS, sysctl-disabled), so this test is
//! green on any host. Epoll itself is covered by `conformance_corpus.rs` —
//! repeating it here would double CI time for zero new coverage.
//!
//! The full backend × accept-mode matrix at generated-sweep scale lives in
//! `repro conformance` (one sweep per backend); this replay keeps the
//! named repros pinned per backend in tier-1.

use experiments::{corpus_entries, BackendKind, ConformanceRig};

fn completion_backends() -> Vec<BackendKind> {
    let mut v = vec![BackendKind::MockCompletion];
    if experiments::io_uring_available() {
        v.push(BackendKind::IoUring);
    }
    v
}

#[test]
fn corpus_replays_identically_on_every_backend() {
    let mut failures = Vec::new();
    for backend in completion_backends() {
        let rig = ConformanceRig::start_with(backend);
        for (name, seq) in corpus_entries() {
            for (leg, detail) in rig.diff_sequence(&seq) {
                failures.push(format!("[{}] {name} vs {leg}: {detail}", backend.label()));
            }
        }
        rig.shutdown();
    }
    assert!(
        failures.is_empty(),
        "cross-backend corpus divergence:\n{}",
        failures.join("\n")
    );
}
