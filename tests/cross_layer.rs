//! Cross-layer consistency: the simulation and the live layer must agree on
//! the *qualitative* architecture contrasts when given the same workload
//! semantics. These tests are the reproduction's internal validity check —
//! if the simulator said one thing and the live sockets another, the
//! figure regeneration would be fiction.

#![cfg(target_os = "linux")]

use desim::Rng;
use eventscale::prelude::*;
use httpcore::ContentStore;
use std::sync::Arc;
use std::time::Duration;
use workload::SurgeConfig;

/// Both layers: the event-driven server yields zero connection resets while
/// the threaded server with a tight idle timeout yields a positive rate.
#[test]
fn reset_contrast_holds_in_both_layers() {
    // --- simulated ---
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let mut sim_nio =
        TestbedConfig::paper_default(ServerArch::EventDriven { workers: 1 }, 1, link);
    sim_nio.num_clients = 150;
    sim_nio.duration = SimDuration::from_secs(20);
    sim_nio.warmup = SimDuration::from_secs(5);
    let sim_nio_r = run_experiment(sim_nio);

    let mut sim_pool = TestbedConfig::paper_default(ServerArch::Threaded { pool: 512 }, 1, link);
    sim_pool.num_clients = 150;
    sim_pool.duration = SimDuration::from_secs(20);
    sim_pool.warmup = SimDuration::from_secs(5);
    // Tight timeout so the quick run shows the effect clearly.
    sim_pool.server_idle_timeout = Some(SimDuration::from_secs(2));
    let sim_pool_r = run_experiment(sim_pool);

    assert_eq!(sim_nio_r.errors.connection_reset, 0);
    assert!(sim_pool_r.errors.connection_reset > 0);

    // --- live ---
    let mut rng = Rng::new(77);
    let files = workload::FileSet::build(
        &SurgeConfig {
            num_files: 100,
            tail_k: 10_000.0,
            tail_cap: 50_000.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    let content = Arc::new(ContentStore::from_fileset(&files));
    let live = |target| loadgen::LoadConfig {
        target,
        clients: 6,
        duration: Duration::from_secs(3),
        client_timeout: Duration::from_secs(5),
        think_scale: 1.0,
        ..loadgen::LoadConfig::default()
    };

    let nio = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content: Arc::clone(&content),
    })
    .unwrap();
    let live_nio = loadgen::run(&live(nio.addr()), &files);
    nio.shutdown();

    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 8,
        lifecycle: httpcore::LifecyclePolicy {
            idle_timeout: Some(Duration::from_millis(300)),
            ..httpcore::LifecyclePolicy::default()
        },
        shed_watermark: None,
        content,
    })
    .unwrap();
    let live_pool = loadgen::run(&live(pool.addr()), &files);
    pool.shutdown();

    assert_eq!(live_nio.errors.connection_reset, 0);
    assert!(live_pool.errors.connection_reset > 0);
}

/// Both layers: under pool exhaustion the event-driven architecture wins
/// throughput at equal concurrency.
#[test]
fn exhaustion_contrast_holds_in_both_layers() {
    // --- simulated: 400 clients vs 32-thread pool ---
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let quick = |server| {
        let mut cfg = TestbedConfig::paper_default(server, 1, link);
        cfg.num_clients = 400;
        cfg.duration = SimDuration::from_secs(20);
        cfg.warmup = SimDuration::from_secs(6);
        run_experiment(cfg)
    };
    let sim_nio = quick(ServerArch::EventDriven { workers: 1 });
    let sim_pool = quick(ServerArch::Threaded { pool: 32 });
    assert!(
        sim_nio.throughput_rps > sim_pool.throughput_rps * 1.3,
        "sim: nio {} vs pool-32 {}",
        sim_nio.throughput_rps,
        sim_pool.throughput_rps
    );

    // --- live: 16 clients vs 2-thread pool ---
    let mut rng = Rng::new(99);
    let files = workload::FileSet::build(
        &SurgeConfig {
            num_files: 100,
            tail_k: 10_000.0,
            tail_cap: 50_000.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    let content = Arc::new(ContentStore::from_fileset(&files));
    let live = |target| loadgen::LoadConfig {
        target,
        clients: 16,
        duration: Duration::from_secs(3),
        client_timeout: Duration::from_secs(5),
        think_scale: 0.01,
        ..loadgen::LoadConfig::default()
    };
    let nio = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content: Arc::clone(&content),
    })
    .unwrap();
    let live_nio = loadgen::run(&live(nio.addr()), &files);
    nio.shutdown();
    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 2,
        lifecycle: httpcore::LifecyclePolicy {
            idle_timeout: Some(Duration::from_secs(1)),
            ..httpcore::LifecyclePolicy::default()
        },
        shed_watermark: None,
        content,
    })
    .unwrap();
    let live_pool = loadgen::run(&live(pool.addr()), &files);
    pool.shutdown();
    assert!(
        live_nio.throughput_rps() > live_pool.throughput_rps() * 1.3,
        "live: nio {} vs pool-2 {}",
        live_nio.throughput_rps(),
        live_pool.throughput_rps()
    );
}

/// The simulated SURGE content and the live content store describe the same
/// document tree (sizes, popularity-weighted means).
#[test]
fn content_layers_agree() {
    let mut rng = Rng::new(123);
    let files = workload::FileSet::build(&SurgeConfig::default(), &mut rng);
    let store = ContentStore::from_fileset(&files);
    assert_eq!(store.len(), files.len());
    for (id, size) in files.iter() {
        assert_eq!(store.size_of(id), size);
        assert_eq!(store.body(id).len() as u64, size);
    }
}
