//! Live-layer robustness: graceful drain loses no in-flight responses,
//! admission control refuses at the door, and a [`faults::FaultPlan`]
//! replays against real servers over loopback sockets.

#![cfg(target_os = "linux")]

use desim::Rng;
use faults::{FaultEvent, FaultKind, FaultPlan};
use httpcore::ContentStore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{FileSet, SurgeConfig};

fn content() -> Arc<ContentStore> {
    let mut rng = Rng::new(7);
    let fs = FileSet::build(
        &SurgeConfig {
            num_files: 20,
            tail_prob: 0.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    Arc::new(ContentStore::from_fileset(&fs))
}

fn start_nio(workers: usize, shed: Option<u64>) -> nioserver::NioServer {
    nioserver::NioServer::start(nioserver::NioConfig {
        workers,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: shed,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content: content(),
    })
    .unwrap()
}

fn start_pool(pool_size: usize, shed: Option<u64>) -> poolserver::PoolServer {
    poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size,
        lifecycle: httpcore::LifecyclePolicy {
            idle_timeout: Some(Duration::from_secs(30)),
            ..httpcore::LifecyclePolicy::default()
        },
        shed_watermark: shed,
        content: content(),
    })
    .unwrap()
}

/// Open a keep-alive connection and run one complete request/response on
/// it, leaving the connection open and idle.
fn idle_after_one(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    read_one_response(&mut s);
    s
}

/// Read exactly one HTTP response (head + content-length body) off an open
/// connection; returns (status, body bytes).
fn read_one_response(s: &mut TcpStream) -> (u16, Vec<u8>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(head) = httpcore::parse_response_head(&buf) {
            let head = head.expect("valid response head");
            if buf.len() >= head.head_len + head.content_length {
                let body = buf[head.head_len..head.head_len + head.content_length].to_vec();
                return (head.status, body);
            }
        }
        let n = s.read(&mut chunk).expect("read response");
        assert!(n > 0, "connection closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn nio_graceful_drain_delivers_in_flight_response() {
    let server = start_nio(1, None);
    let addr = server.addr();

    // Connection A: complete one exchange, then sit idle (keep-alive).
    let _a = idle_after_one(addr);

    // Connection B: half a request on the wire when the drain begins.
    let mut b = TcpStream::connect(addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    b.write_all(b"GET /f/1 HTT").unwrap();
    // Let the worker pull the partial bytes into its parser so the drain
    // sweep sees B as in-flight, not idle.
    std::thread::sleep(Duration::from_millis(150));

    let drain = std::thread::spawn(move || server.shutdown_graceful(Duration::from_secs(3)));
    std::thread::sleep(Duration::from_millis(100));
    // Finish the request mid-drain: the response must still arrive whole.
    b.write_all(b"P/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let (status, body) = read_one_response(&mut b);
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    let report = drain.join().unwrap();
    assert_eq!(report.aborted, 0, "no in-flight response may be lost");
    assert_eq!(report.drained, 2, "idle A and served B both end cleanly");
}

/// The drain path is O(active), not O(open): however many idle connections
/// are open and however many event-loop passes the drain spans, a worker
/// performs at most two full sweeps over the connection map — one when the
/// drain begins, one if the deadline fires. Connections that become idle
/// mid-drain close from the event path instead.
#[test]
fn nio_drain_full_sweeps_bounded_regardless_of_idle_population() {
    let server = start_nio(1, None);
    let addr = server.addr();
    let stats = server.stats_arc();

    // A large idle population the drain must not rescan every pass.
    let idle: Vec<TcpStream> = (0..40).map(|_| idle_after_one(addr)).collect();

    // One in-flight connection that holds the drain open across many
    // event-loop passes: each dribbled byte wakes the worker.
    let mut b = TcpStream::connect(addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    b.write_all(b"GET /f/1 HTT").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let drain = std::thread::spawn(move || server.shutdown_graceful(Duration::from_secs(5)));
    std::thread::sleep(Duration::from_millis(100));
    for chunk in [&b"P/1.1\r\n"[..], b"Host: t\r\n", b"Connection: close\r\n"] {
        b.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    b.write_all(b"\r\n").unwrap();
    let (status, _) = read_one_response(&mut b);
    assert_eq!(status, 200);

    let report = drain.join().unwrap();
    assert_eq!(report.aborted, 0);
    assert_eq!(report.drained, 41, "40 idle + the served straggler");
    let sweeps = stats.drain_full_sweeps.load(Ordering::Relaxed);
    assert!(
        (1..=2).contains(&sweeps),
        "drain swept the full map {sweeps} times; the protocol bounds it at 2"
    );
    drop(idle);
}

#[test]
fn pool_graceful_drain_delivers_in_flight_response() {
    let server = start_pool(4, None);
    let addr = server.addr();

    // A: idle keep-alive; its pool thread is parked in a blocking read.
    let _a = idle_after_one(addr);

    // B: request answered by the server but not yet read by the client —
    // the drain must not claw those bytes back.
    let mut b = TcpStream::connect(addr).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    b.write_all(b"GET /f/2 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let report = server.shutdown_graceful(Duration::from_secs(3));
    assert_eq!(report.aborted, 0, "no response was owed at the deadline");
    assert_eq!(report.drained, 2);

    let (status, body) = read_one_response(&mut b);
    assert_eq!(status, 200);
    assert!(!body.is_empty());
}

#[test]
fn shed_watermark_refuses_at_the_door_on_both_servers() {
    // Watermark 0: every connection is over the limit, so both servers
    // answer the door only to slam it (abortive close, not a silent drop).
    let nio = start_nio(1, Some(0));
    let mut s = TcpStream::connect(nio.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let _ = s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n");
    let mut sink = Vec::new();
    assert!(
        s.read_to_end(&mut sink).is_err() || sink.is_empty(),
        "a shed connection must carry no response"
    );
    let refused = nio.stats().refused.load(Ordering::Relaxed);
    assert!(refused >= 1, "nio refused counter: {refused}");
    nio.shutdown();

    let pool = start_pool(2, Some(0));
    let mut s = TcpStream::connect(pool.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let _ = s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: t\r\n\r\n");
    let mut sink = Vec::new();
    assert!(s.read_to_end(&mut sink).is_err() || sink.is_empty());
    // The accept loop may need a beat to pick the connection up.
    let deadline = Instant::now() + Duration::from_secs(2);
    while pool.stats().refused.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(pool.stats().refused.load(Ordering::Relaxed) >= 1);
    pool.shutdown();
}

/// A millisecond-denominated stall+crash plan for loopback replay.
fn quick_plan() -> FaultPlan {
    let ms = 1_000_000u64;
    FaultPlan::new(
        "live-smoke",
        vec![
            FaultEvent {
                start_ns: 0,
                duration_ns: 120 * ms,
                kind: FaultKind::ServerStall,
            },
            FaultEvent {
                start_ns: 20 * ms,
                duration_ns: 120 * ms,
                kind: FaultKind::WorkerCrash {
                    fraction: 0.5,
                    restart: true,
                },
            },
        ],
    )
}

fn get_ok(addr: SocketAddr, path: &str) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let (status, _) = read_one_response(&mut s);
    assert_eq!(status, 200);
}

#[test]
fn fault_plan_replays_against_live_nio_server() {
    let server = start_nio(2, None);
    let outcome = faults::run_plan(&quick_plan(), &server, 1.0);
    assert_eq!(outcome.applied, 2);
    assert_eq!(outcome.skipped, 0);
    assert!(server.stats().worker_crashes.load(Ordering::Relaxed) >= 1);
    // The restarted worker comes back and the server serves normally.
    let deadline = Instant::now() + Duration::from_secs(3);
    while server.stats().alive_workers.load(Ordering::Relaxed) < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().alive_workers.load(Ordering::Relaxed), 2);
    for i in 0..4 {
        get_ok(server.addr(), &format!("/f/{i}"));
    }
    server.shutdown();
}

#[test]
fn fault_plan_replays_against_live_pool_server() {
    let server = start_pool(4, None);
    let outcome = faults::run_plan(&quick_plan(), &server, 1.0);
    assert_eq!(outcome.applied, 2);
    assert_eq!(outcome.skipped, 0);
    let deadline = Instant::now() + Duration::from_secs(3);
    while server.stats().alive_threads.load(Ordering::Relaxed) < 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().alive_threads.load(Ordering::Relaxed), 4);
    for i in 0..4 {
        get_ok(server.addr(), &format!("/f/{i}"));
    }
    server.shutdown();
}
