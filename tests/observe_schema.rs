//! Schema equality across layers: a simulated `repro observe` capture and a
//! live loadgen capture must emit the *same* JSONL schema — same `type`
//! tags, same keys per record type — so one analysis pipeline reads both.

#![cfg(target_os = "linux")]

use desim::SimDuration;
use eventscale::experiments::{observe, Scale};
use httpcore::ContentStore;
use obs::export::LINE_TYPES;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;
use workload::{FileSet, SurgeConfig};

/// Top-level keys of one JSONL object line, in order. Minimal scanner for
/// output this workspace itself rendered (no serde by policy).
fn top_level_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                // Scan the string (keys and values both land here).
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let is_key = depth == 1 && bytes.get(j + 1) == Some(&b':');
                if is_key {
                    keys.push(line[start..j].to_string());
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

fn line_type(line: &str) -> String {
    let keys = top_level_keys(line);
    assert_eq!(keys.first().map(String::as_str), Some("type"), "{line}");
    // `"type":"X"` is always the first pair by construction.
    let rest = &line[line.find(':').unwrap() + 2..];
    rest[..rest.find('"').unwrap()].to_string()
}

/// First line of each record type, keyed by tag.
fn schema_of(doc: &str) -> Vec<(String, Vec<String>)> {
    let mut seen: Vec<(String, Vec<String>)> = Vec::new();
    for line in doc.lines() {
        let t = line_type(line);
        assert!(LINE_TYPES.contains(&t.as_str()), "unknown type {t}");
        if !seen.iter().any(|(s, _)| *s == t) {
            seen.push((t, top_level_keys(line)));
        }
    }
    seen
}

fn sim_capture() -> String {
    let scale = Scale {
        loads: vec![40],
        duration: SimDuration::from_secs(4),
        warmup: SimDuration::from_secs(1),
        ramp: SimDuration::from_millis(500),
        seed: 11,
    };
    observe("fig1a", &scale).expect("catalog figure").to_jsonl()
}

fn live_capture() -> String {
    let mut rng = desim::Rng::new(3);
    let files = FileSet::build(
        &SurgeConfig {
            num_files: 30,
            tail_prob: 0.0,
            body_mu: 7.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    let content = Arc::new(ContentStore::from_fileset(&files));
    let server = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content,
    })
    .expect("start server");
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = obs::spawn_sampler(
        server.gauges(),
        obs::gauge::kinds_for(false),
        Duration::from_millis(5),
        4096,
        Arc::clone(&stop),
    );
    let cfg = loadgen::LoadConfig {
        target: server.addr(),
        clients: 4,
        duration: Duration::from_millis(800),
        client_timeout: Duration::from_secs(5),
        think_scale: 0.005,
        seed: 42,
        obs: Some(obs::ObsConfig::default()),
        ..Default::default()
    };
    let mut report = loadgen::run(&cfg, &files);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    report.obs.gauges.merge(sampler.join().expect("sampler"));
    server.shutdown();
    let meta = obs::ExportMeta::new("live", "nio-live")
        .with("server", "nio-1w")
        .with("clients", cfg.clients as u64);
    obs::to_jsonl(&report.obs, &meta, 0)
}

#[test]
fn sim_and_live_jsonl_share_one_schema() {
    let sim = sim_capture();
    let live = live_capture();

    let sim_schema = schema_of(&sim);
    let live_schema = schema_of(&live);

    // Both captures exercise every record type, in emission order.
    let tags = |s: &[(String, Vec<String>)]| -> Vec<String> {
        s.iter().map(|(t, _)| t.clone()).collect()
    };
    assert_eq!(tags(&sim_schema), LINE_TYPES.to_vec());
    assert_eq!(tags(&live_schema), LINE_TYPES.to_vec());

    for ((t, sim_keys), (_, live_keys)) in sim_schema.iter().zip(&live_schema) {
        if t == "meta" {
            // Meta carries run-specific extras; the required header keys
            // must be present and ordered identically in both.
            for k in ["type", "source", "label", "t_unit"] {
                assert!(sim_keys.contains(&k.to_string()), "sim meta lacks {k}");
                assert!(live_keys.contains(&k.to_string()), "live meta lacks {k}");
            }
        } else {
            assert_eq!(sim_keys, live_keys, "key mismatch for type {t}");
        }
    }

    // Both declare their layer truthfully.
    assert!(sim.lines().next().unwrap().contains(r#""source":"sim""#));
    assert!(live.lines().next().unwrap().contains(r#""source":"live""#));

    // Spot-check the invariant both layers promise: stage sums equal totals
    // on every request line. Cheap string-free check via the tracker is done
    // elsewhere; here we check the serialized form agrees with itself.
    for doc in [&sim, &live] {
        for line in doc.lines().filter(|l| l.contains(r#""type":"request""#)) {
            let total: u64 = field_u64(line, "total_ns");
            let sum: u64 = line
                .split(r#""ns":"#)
                .skip(1)
                .map(|s| s[..s.find(['}', ','].as_ref()).unwrap()].parse::<u64>().unwrap())
                .sum();
            assert_eq!(sum, total, "stages must sum to total: {line}");
        }
    }
}

/// The `refused` end reason flows through both exporters in both layers:
/// a sim run with admission control and a live run against a shedding
/// server each emit `"end":"refused"` JSONL lines, and the terminal
/// end-reason table shows a non-zero `refused` row.
#[test]
fn refused_end_reason_reaches_both_exporters_in_both_layers() {
    // Sim layer: a threaded server with a low shed watermark refuses
    // connections once a couple of threads are bound.
    let link = netsim::LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let mut cfg = eventscale::serversim::TestbedConfig::paper_default(
        eventscale::serversim::ServerArch::Threaded { pool: 2 },
        1,
        link,
    );
    cfg.num_clients = 40;
    cfg.duration = SimDuration::from_secs(6);
    cfg.warmup = SimDuration::from_secs(1);
    cfg.ramp = SimDuration::from_millis(500);
    cfg.admission.shed_watermark = Some(2);
    cfg.obs = Some(obs::ObsConfig::default());
    let tb = eventscale::serversim::run(cfg);
    assert!(
        tb.metrics.errors.connection_refused > 0,
        "watermark must trip: {:?}",
        tb.metrics.errors
    );
    let meta = obs::ExportMeta::new("sim", "refused-sim");
    let sim_jsonl = obs::to_jsonl(&tb.obs, &meta, 0);
    assert!(
        sim_jsonl.contains(r#""end":"refused""#),
        "sim JSONL must carry refused request lines"
    );
    let sim_table = obs::report::end_reason_table(&tb.obs.requests);
    assert!(sim_table.contains("refused"), "table: {sim_table}");

    // Live layer: a shedding nio server refuses at the door; loadgen's
    // capture classifies those ends as refused, not reset.
    let mut rng = desim::Rng::new(5);
    let files = FileSet::build(
        &SurgeConfig {
            num_files: 10,
            tail_prob: 0.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    );
    let server = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: Some(0),
        lifecycle: httpcore::LifecyclePolicy::default(),
        content: Arc::new(ContentStore::from_fileset(&files)),
    })
    .expect("start server");
    let cfg = loadgen::LoadConfig {
        target: server.addr(),
        clients: 4,
        duration: Duration::from_millis(500),
        client_timeout: Duration::from_secs(2),
        think_scale: 0.005,
        seed: 9,
        obs: Some(obs::ObsConfig::default()),
        ..Default::default()
    };
    let report = loadgen::run(&cfg, &files);
    server.shutdown();
    assert!(
        report.errors.connection_refused > 0,
        "live shed must refuse: {:?}",
        report.errors
    );
    let meta = obs::ExportMeta::new("live", "refused-live");
    let live_jsonl = obs::to_jsonl(&report.obs, &meta, 0);
    assert!(
        live_jsonl.contains(r#""end":"refused""#),
        "live JSONL must carry refused request lines"
    );
    let live_table = obs::report::end_reason_table(&report.obs.requests);
    assert!(live_table.contains("refused"), "table: {live_table}");
}

fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!(r#""{key}":"#);
    let start = line.find(&pat).expect(key) + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'].as_ref()).unwrap();
    rest[..end].parse().unwrap()
}
