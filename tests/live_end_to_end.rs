//! Workspace integration: the live layer reproduces the paper's qualitative
//! contrasts over real loopback sockets.

#![cfg(target_os = "linux")]

use desim::Rng;
use httpcore::ContentStore;
use std::sync::Arc;
use std::time::Duration;
use workload::{FileSet, SurgeConfig};

fn files() -> FileSet {
    let mut rng = Rng::new(11);
    FileSet::build(
        &SurgeConfig {
            num_files: 200,
            tail_k: 20_000.0,
            tail_cap: 100_000.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    )
}

fn quick_load(target: std::net::SocketAddr, secs: u64) -> loadgen::LoadConfig {
    loadgen::LoadConfig {
        target,
        clients: 16,
        duration: Duration::from_secs(secs),
        client_timeout: Duration::from_secs(5),
        think_scale: 0.01,
        ..loadgen::LoadConfig::default()
    }
}

#[test]
fn one_worker_reactor_sustains_many_live_clients() {
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));
    let server = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content,
    })
    .unwrap();
    let report = loadgen::run(&quick_load(server.addr(), 3), &fs);
    assert!(report.replies > 100, "replies {}", report.replies);
    assert_eq!(report.errors.connection_reset, 0);
    assert!(report.sessions_completed > 5);
    // One worker, sixteen concurrent clients: the whole point.
    assert!(server.stats().accepted.load(std::sync::atomic::Ordering::Relaxed) > 5);
    server.shutdown();
}

#[test]
fn poll_backend_works_like_epoll() {
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));
    let server = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 2,
        backend: nioserver::BackendKind::Poll,
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content,
    })
    .unwrap();
    let report = loadgen::run(&quick_load(server.addr(), 2), &fs);
    assert!(report.replies > 50, "replies {}", report.replies);
    server.shutdown();
}

#[test]
fn live_reset_contrast_between_architectures() {
    // Same aggressive idle timeout conditions; only the threaded server
    // resets clients, because only it needs to reclaim threads.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));

    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 8,
        lifecycle: httpcore::LifecyclePolicy {
            idle_timeout: Some(Duration::from_millis(300)),
            ..httpcore::LifecyclePolicy::default()
        },
        shed_watermark: None,
        content: Arc::clone(&content),
    })
    .unwrap();
    let mut cfg = quick_load(pool.addr(), 3);
    cfg.think_scale = 1.0; // real think times exceed 300 ms
    cfg.clients = 8;
    let pool_report = loadgen::run(&cfg, &fs);
    pool.shutdown();

    let nio = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content,
    })
    .unwrap();
    let mut cfg = quick_load(nio.addr(), 3);
    cfg.think_scale = 1.0;
    cfg.clients = 8;
    let nio_report = loadgen::run(&cfg, &fs);
    nio.shutdown();

    assert!(
        pool_report.errors.connection_reset > 0,
        "threaded server must reset thinking clients: {:?}",
        pool_report.errors
    );
    assert_eq!(
        nio_report.errors.connection_reset, 0,
        "event-driven server must not reset: {:?}",
        nio_report.errors
    );
}

#[test]
fn live_pool_exhaustion_throttles_throughput() {
    // 2 pool threads vs 16 concurrent clients: most clients queue behind
    // bound threads, so the reactor server with one worker far outpaces it.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));

    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 2,
        lifecycle: httpcore::LifecyclePolicy {
            idle_timeout: Some(Duration::from_secs(1)),
            ..httpcore::LifecyclePolicy::default()
        },
        shed_watermark: None,
        content: Arc::clone(&content),
    })
    .unwrap();
    let pool_report = loadgen::run(&quick_load(pool.addr(), 3), &fs);
    pool.shutdown();

    let nio = nioserver::NioServer::start(nioserver::NioConfig {
        workers: 1,
        backend: nioserver::BackendKind::from_env(),
        accept: nioserver::AcceptMode::from_env(),
        shed_watermark: None,
        lifecycle: httpcore::LifecyclePolicy::default(),
        content,
    })
    .unwrap();
    let nio_report = loadgen::run(&quick_load(nio.addr(), 3), &fs);
    nio.shutdown();

    assert!(
        nio_report.throughput_rps() > pool_report.throughput_rps() * 1.5,
        "nio {} rps vs exhausted pool {} rps",
        nio_report.throughput_rps(),
        pool_report.throughput_rps()
    );
}
