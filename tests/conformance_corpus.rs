//! Regression-corpus replay: every persisted sequence under
//! `tests/corpus/*.seq` must produce the oracle-predicted outcome on every
//! live server variant. Each corpus entry is a shrunk, named repro of a
//! protocol behaviour (several of them past real bugs); this test keeps
//! them pinned in CI without paying for a full generated sweep.
//!
//! The full sweep (≥1000 generated sequences + mutation teeth) lives in
//! `repro conformance`; the smoke slice runs in CI alongside this replay.

use experiments::{corpus_entries, ConformanceRig};

#[test]
fn corpus_is_present_and_well_formed() {
    // `corpus_entries` hard-errors on unparseable files; this asserts the
    // corpus hasn't been emptied out from under the conformance gate.
    let entries = corpus_entries();
    assert!(
        entries.len() >= 5,
        "regression corpus shrank to {} entries — named repros must stay",
        entries.len()
    );
}

#[test]
fn corpus_replays_identically_on_every_variant() {
    let rig = ConformanceRig::start();
    let mut failures = Vec::new();
    for (name, seq) in corpus_entries() {
        for (leg, detail) in rig.diff_sequence(&seq) {
            failures.push(format!("{name} vs {leg}: {detail}"));
        }
    }
    rig.shutdown();
    assert!(
        failures.is_empty(),
        "corpus divergence:\n{}",
        failures.join("\n")
    );
}
