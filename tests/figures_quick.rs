//! Workspace integration: every paper figure regenerates at reduced scale
//! and keeps its qualitative shape. This is the CI-speed version of
//! `repro all`; absolute numbers shrink with the load, the who-wins
//! relations must not.

use eventscale::prelude::*;

/// A quick campaign shared by all tests in this binary (figure builders
/// memoise sweeps, so panel pairs cost one sweep).
fn campaign() -> Campaign {
    Campaign::new(Scale::quick())
}

#[test]
fn fig1_uniprocessor_throughput_shapes() {
    let mut c = campaign();
    for id in ["fig1a", "fig1b"] {
        let fig = c.build(id);
        let checks = check_figure(&fig);
        assert!(!checks.is_empty());
        // At quick scale only the monotone-growth checks are meaningful;
        // peak-ordering needs saturation, which needs paper-scale load. The
        // first check of both panels is the growth check.
        assert!(
            checks[0].pass,
            "{id}: {} — {}\n{}",
            checks[0].name,
            checks[0].detail,
            fig.render()
        );
    }
}

#[test]
fn fig3_error_taxonomy() {
    let mut c = campaign();
    let fig = c.build("fig3b");
    let checks = check_figure(&fig);
    // "nio never produces connection resets" holds at any scale.
    let nio_check = &checks[0];
    assert!(
        nio_check.pass,
        "{} — {}\n{}",
        nio_check.name,
        nio_check.detail,
        fig.render()
    );
    // httpd produces at least some resets once load is non-trivial.
    let httpd = fig.series_by_label("httpd").unwrap();
    let total: f64 = httpd.points.iter().map(|r| r.conn_reset_per_s).sum();
    assert!(total > 0.0, "httpd should reset thinking clients\n{}", fig.render());
}

#[test]
fn fig4_connection_time_contrast() {
    // Use a dedicated sweep with loads crossing a small pool's size so the
    // contrast appears at quick scale.
    let mut scale = Scale::quick();
    scale.loads = vec![60, 300, 600];
    let mut c = Campaign::new(scale);
    let nio = c.series(
        "nio",
        ServerArch::EventDriven { workers: 1 },
        1,
        experiments::LinkSetup::Gbit1,
    );
    let small_pool = c.series(
        "httpd-128t",
        ServerArch::Threaded { pool: 128 },
        1,
        experiments::LinkSetup::Gbit1,
    );
    let nio_worst = nio
        .points
        .iter()
        .map(|r| r.mean_connect_ms)
        .fold(0.0f64, f64::max);
    let pool_at_overload = small_pool.points.last().unwrap().mean_connect_ms;
    assert!(
        nio_worst < 20.0,
        "nio connection time should stay flat: {nio_worst} ms"
    );
    assert!(
        pool_at_overload > nio_worst * 10.0,
        "128-thread pool at 600 clients should show contention: {pool_at_overload} ms vs {nio_worst} ms"
    );
}

#[test]
fn fig5_bandwidth_cap() {
    // At quick scale, use a narrower link so saturation happens by 600
    // clients: 20 Mbit/s ≈ 2.5 MB/s.
    let link = LinkConfig::from_mbit(20.0, SimDuration::from_micros(100));
    let mut cfg = TestbedConfig::paper_default(ServerArch::EventDriven { workers: 1 }, 1, link);
    cfg.num_clients = 600;
    cfg.duration = SimDuration::from_secs(20);
    cfg.warmup = SimDuration::from_secs(6);
    let r = run_experiment(cfg);
    assert!(
        (1.9..2.8).contains(&r.bandwidth_mb_s),
        "20 Mbit link should saturate near 2.5 MB/s, got {}",
        r.bandwidth_mb_s
    );
}

#[test]
fn fig9_smp_scaling_direction() {
    // Full doubling requires paper-scale saturation; at quick scale assert
    // the direction and a sane magnitude using a CPU-heavy load.
    let link = LinkConfig::from_mbit(1000.0, SimDuration::from_micros(100));
    let run_with = |cpus: usize, arch: ServerArch| {
        let mut cfg = TestbedConfig::paper_default(arch, cpus, link);
        cfg.num_clients = 5000;
        cfg.duration = SimDuration::from_secs(25);
        cfg.warmup = SimDuration::from_secs(8);
        run_experiment(cfg)
    };
    let nio_up = run_with(1, ServerArch::EventDriven { workers: 1 });
    let nio_smp = run_with(4, ServerArch::EventDriven { workers: 2 });
    let ratio = nio_smp.throughput_rps / nio_up.throughput_rps;
    assert!(
        ratio > 1.4,
        "SMP should clearly beat UP under saturation: {ratio:.2} ({} vs {})",
        nio_smp.throughput_rps,
        nio_up.throughput_rps
    );
}

#[test]
fn campaign_caches_sweeps_across_panels() {
    let mut c = Campaign::new(Scale {
        loads: vec![30, 90],
        duration: SimDuration::from_secs(8),
        warmup: SimDuration::from_secs(3),
        ramp: SimDuration::from_secs(1),
        seed: 7,
    });
    let t0 = std::time::Instant::now();
    let _fig1a = c.build("fig1a");
    let first = t0.elapsed();
    let t1 = std::time::Instant::now();
    let fig2a = c.build("fig2a"); // same sweeps, different metric
    let second = t1.elapsed();
    assert!(
        second < first / 5,
        "panel pair should reuse cached sweeps: {first:?} then {second:?}"
    );
    assert_eq!(fig2a.metric, Metric::ResponseMs);
}
