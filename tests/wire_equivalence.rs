//! Differential wire equivalence across accept modes and architectures.
//!
//! The sharded accept path changes *how* a connection reaches a worker —
//! it must not change a single byte of what the server says on the wire.
//! Each scripted request byte stream below is replayed verbatim against
//! three live servers — the nio server in handoff mode, the nio server in
//! sharded mode, and the thread-pool server — and the full response
//! streams must be byte-identical modulo the `Date` header (the one
//! documented per-run difference: poolserver stamps it per connection, the
//! nio server per selector pass).
//!
//! The scripts cover the parser's edge behaviour end to end: pipelined
//! bursts, heads split at awkward chunk boundaries, oversized heads
//! (431 + close), partial heads timed out by the header deadline
//! (408 + close), and malformed request lines (400 + close).
//!
//! The fleet layer adds one more differential axis: a balancer front with a
//! single backend must be wire-invisible. Every script replayed through a
//! live TCP proxy that routes with the real [`serversim::LoadBalancer`]
//! (N=1, each strategy) must observe byte-identical outcomes to replaying
//! direct-to-server — for both nio accept modes and the thread pool.

#![cfg(target_os = "linux")]

use desim::Rng;
use httpcore::{ContentStore, LifecyclePolicy};
use serversim::{HealthConfig, LoadBalancer, Strategy};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use workload::{FileSet, SurgeConfig};

/// One step of a scripted client.
enum Step {
    /// Write these bytes to the socket.
    Send(Vec<u8>),
    /// Sleep this long with the socket open (chunk-split / stall shaping).
    Pause(Duration),
    /// `shutdown(SHUT_WR)`: promise the server no more request bytes while
    /// still reading every reply it owes.
    HalfClose,
}

struct Script {
    name: &'static str,
    steps: Vec<Step>,
    /// Status codes the response stream must contain, in order.
    expect: Vec<u16>,
}

/// Shared policy: the header deadline armed (so partial heads resolve as
/// 408 instead of hanging), everything else at paper defaults.
fn policy() -> LifecyclePolicy {
    LifecyclePolicy {
        header_timeout: Some(Duration::from_millis(400)),
        ..LifecyclePolicy::default()
    }
}

fn files() -> FileSet {
    let mut rng = Rng::new(77);
    FileSet::build(
        &SurgeConfig {
            num_files: 50,
            tail_k: 10_000.0,
            tail_cap: 50_000.0,
            ..SurgeConfig::default()
        },
        &mut rng,
    )
}

fn scripts() -> Vec<Script> {
    let burst = concat_requests(&[
        "GET /f/0 HTTP/1.1\r\nHost: sut\r\n\r\n",
        "GET /f/1 HTTP/1.1\r\nHost: sut\r\n\r\n",
        "GET /nope HTTP/1.1\r\nHost: sut\r\n\r\n",
        "GET /f/2 HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n",
    ]);
    // Two requests delivered in fragments that split the request line, a
    // header, and the terminating CRLFCRLF itself.
    let split = vec![
        Step::Send(b"GET /f".to_vec()),
        Step::Pause(Duration::from_millis(5)),
        Step::Send(b"/3 HTTP/1.1\r\nHo".to_vec()),
        Step::Pause(Duration::from_millis(5)),
        Step::Send(b"st: sut\r\n\r".to_vec()),
        Step::Pause(Duration::from_millis(5)),
        Step::Send(b"\nGET /f/4 HTTP/1.1\r\nConnection: clo".to_vec()),
        Step::Pause(Duration::from_millis(5)),
        Step::Send(b"se\r\n\r\n".to_vec()),
    ];
    let mut oversized = b"GET /f/0 HTTP/1.1\r\nX-Pad: ".to_vec();
    oversized.extend(std::iter::repeat_n(b'a', 9000));
    oversized.extend_from_slice(b"\r\n\r\n");
    vec![
        Script {
            name: "pipelined_burst",
            steps: vec![Step::Send(burst)],
            expect: vec![200, 200, 404, 200],
        },
        Script {
            name: "chunk_split_heads",
            steps: split,
            expect: vec![200, 200],
        },
        Script {
            name: "oversized_head",
            steps: vec![Step::Send(oversized)],
            expect: vec![431],
        },
        Script {
            name: "partial_head",
            // The head never completes; the server's header deadline must
            // answer 408 and close.
            steps: vec![Step::Send(b"GET /f/0 HTTP/1.1\r\nHost: s".to_vec())],
            expect: vec![408],
        },
        Script {
            name: "malformed_version",
            steps: vec![Step::Send(b"GET /f/0 HTTP/2.0\r\n\r\n".to_vec())],
            expect: vec![400],
        },
        Script {
            name: "malformed_request_line",
            steps: vec![Step::Send(
                b"GET /f/0 HTTP/1.1 EXTRA-TOKEN\r\n\r\n".to_vec(),
            )],
            expect: vec![400],
        },
        Script {
            // Promoted from the conformance corpus: keep-alive requests
            // with no `Connection: close` anywhere, ended by the client's
            // FIN — every buffered request must still be answered and the
            // close must be clean.
            name: "half_close_drains_pipeline",
            steps: vec![
                Step::Send(concat_requests(&[
                    "GET /f/7 HTTP/1.1\r\nHost: sut\r\n\r\n",
                    "GET /f/8 HTTP/1.1\r\nHost: sut\r\n\r\n",
                ])),
                Step::HalfClose,
            ],
            expect: vec![200, 200],
        },
        Script {
            // Promoted from the conformance corpus: a complete request
            // pipelined with a head that never finishes. The 200 must be
            // served immediately; the dangling head resolves as 408 when
            // the header deadline fires mid-pipeline.
            name: "timeout_mid_pipeline",
            steps: vec![Step::Send(concat_requests(&[
                "GET /f/5 HTTP/1.1\r\nHost: sut\r\n\r\n",
                "GET /f/6 HTTP/1.1\r\nHost: s",
            ]))],
            expect: vec![200, 408],
        },
    ]
}

fn concat_requests(reqs: &[&str]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reqs {
        out.extend_from_slice(r.as_bytes());
    }
    out
}

/// Replay a script against one server and capture everything it answers,
/// reading until the server closes the connection.
fn replay(addr: SocketAddr, script: &Script) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for step in &script.steps {
        match step {
            Step::Send(bytes) => stream.write_all(bytes).expect("script write"),
            Step::Pause(d) => std::thread::sleep(*d),
            Step::HalfClose => stream.shutdown(Shutdown::Write).expect("half-close"),
        }
    }
    // Deliberately no write-side shutdown: a FIN would let the server
    // treat the partial-head script as a client close instead of letting
    // the header deadline fire.
    let mut out = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("{}: server never closed the connection", script.name)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break, // reset after the final response is also an end
        }
    }
    out
}

/// Replace every `Date:` header value in the stream with a fixed token,
/// walking response-by-response so body bytes are never touched.
fn normalize(data: &[u8]) -> Vec<u8> {
    let mut rest = data;
    let mut out = Vec::new();
    while !rest.is_empty() {
        match httpcore::parse_response_head(rest) {
            Some(Ok(h)) => {
                out.extend_from_slice(&scrub_date(&rest[..h.head_len]));
                let body_end = (h.head_len + h.content_length).min(rest.len());
                out.extend_from_slice(&rest[h.head_len..body_end]);
                rest = &rest[body_end..];
            }
            _ => {
                // Trailing bytes that are not a complete head (should not
                // happen with close-delimited scripts): keep them verbatim
                // so a divergence still fails the comparison loudly.
                out.extend_from_slice(rest);
                break;
            }
        }
    }
    out
}

fn scrub_date(head: &[u8]) -> Vec<u8> {
    let mut out = head.to_vec();
    let marker = b"\r\nDate: ";
    if let Some(start) = out
        .windows(marker.len())
        .position(|w| w == marker)
        .map(|p| p + marker.len())
    {
        if let Some(end) = out[start..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .map(|p| p + start)
        {
            out.splice(start..end, b"<DATE>".iter().copied());
        }
    }
    out
}

/// Status codes in stream order.
fn statuses(data: &[u8]) -> Vec<u16> {
    let mut rest = data;
    let mut out = Vec::new();
    while let Some(Ok(h)) = httpcore::parse_response_head(rest) {
        out.push(h.status);
        let body_end = (h.head_len + h.content_length).min(rest.len());
        rest = &rest[body_end..];
        if rest.is_empty() {
            break;
        }
    }
    out
}

fn start_nio(
    accept: nioserver::AcceptMode,
    backend: nioserver::BackendKind,
    content: &Arc<ContentStore>,
) -> nioserver::NioServer {
    nioserver::NioServer::start(nioserver::NioConfig {
        workers: 2,
        backend,
        accept,
        shed_watermark: None,
        lifecycle: policy(),
        content: Arc::clone(content),
    })
    .expect("start nio server")
}

/// Every reactor backend this host can run: epoll and the deterministic
/// completion mock always, io_uring when the kernel grants a ring.
fn available_backends() -> Vec<nioserver::BackendKind> {
    let mut v = vec![
        nioserver::BackendKind::Epoll,
        nioserver::BackendKind::MockCompletion,
    ];
    if nioserver::io_uring_available() {
        v.push(nioserver::BackendKind::IoUring);
    }
    v
}

#[test]
fn all_accept_modes_and_architectures_answer_identical_bytes() {
    // The full backend × accept-mode matrix against one fixed reference:
    // poolserver has no reactor at all, so its stream anchors the
    // comparison — every (backend, accept) nio variant must answer the
    // same bytes a thread-per-connection server does, modulo Date.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));

    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 4,
        lifecycle: policy(),
        shed_watermark: None,
        content: Arc::clone(&content),
    })
    .expect("start pool server");

    // One reference stream per script, shared by the whole matrix.
    let reference: Vec<(Script, Vec<u8>)> = scripts()
        .into_iter()
        .map(|script| {
            let raw = replay(pool.addr(), &script);
            assert!(!raw.is_empty(), "{}/poolserver: empty stream", script.name);
            assert_eq!(
                statuses(&raw),
                script.expect,
                "{}/poolserver: status sequence mismatch",
                script.name
            );
            let norm = normalize(&raw);
            (script, norm)
        })
        .collect();

    for backend in available_backends() {
        let handoff = start_nio(nioserver::AcceptMode::Handoff, backend, &content);
        let sharded = start_nio(nioserver::AcceptMode::Sharded, backend, &content);
        for (script, reference) in &reference {
            for (who, addr) in [
                ("nio-handoff", handoff.addr()),
                ("nio-sharded", sharded.addr()),
            ] {
                let raw = replay(addr, script);
                assert!(
                    !raw.is_empty(),
                    "{}/{who}[{}]: empty response stream",
                    script.name,
                    backend.label()
                );
                assert_eq!(
                    statuses(&raw),
                    script.expect,
                    "{}/{who}[{}]: status sequence mismatch",
                    script.name,
                    backend.label()
                );
                assert_eq!(
                    &normalize(&raw),
                    reference,
                    "{}/{who}[{}]: diverged from poolserver on the wire",
                    script.name,
                    backend.label()
                );
            }
        }
        handoff.shutdown();
        sharded.shutdown();
    }

    pool.shutdown();
}

/// Copy bytes one way between two sockets, propagating EOF as a write-side
/// shutdown so half-closes traverse the front exactly as they would a
/// direct connection.
fn pump(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    let _ = from.shutdown(Shutdown::Read);
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // A reset also ends the stream; surface it as a close so
                // the peer's read loop terminates the same way.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
        }
    }
}

/// A minimal live balancer front: accepts on its own port, asks the real
/// `LoadBalancer` which backend each connection goes to, and splices bytes
/// both ways. Routing only — health probing and retry accounting are
/// exercised by the sim testbed and the balancer proptests; what this front
/// must prove is that interposing the balancer never changes the bytes.
struct BalancerFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BalancerFront {
    fn start(backends: Vec<SocketAddr>, strategy: Strategy) -> BalancerFront {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind front");
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut lb = LoadBalancer::new(backends.len(), strategy, HealthConfig::default());
            let mut key = 0u64;
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        key += 1;
                        let host = lb.pick(key).expect("a routable backend");
                        let backend =
                            TcpStream::connect(backends[host]).expect("connect backend");
                        client.set_nodelay(true).ok();
                        backend.set_nodelay(true).ok();
                        let c = client.try_clone().expect("clone client");
                        let b = backend.try_clone().expect("clone backend");
                        std::thread::spawn(move || pump(c, backend));
                        std::thread::spawn(move || pump(b, client));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        BalancerFront {
            addr,
            stop,
            handle: Some(handle),
        }
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

#[test]
fn balancer_front_with_one_backend_is_wire_invisible() {
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));

    let handoff = start_nio(nioserver::AcceptMode::Handoff, nioserver::BackendKind::Epoll, &content);
    let sharded = start_nio(nioserver::AcceptMode::Sharded, nioserver::BackendKind::Epoll, &content);
    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 4,
        lifecycle: policy(),
        shed_watermark: None,
        content: Arc::clone(&content),
    })
    .expect("start pool server");

    for (who, backend) in [
        ("nio-handoff", handoff.addr()),
        ("nio-sharded", sharded.addr()),
        ("poolserver", pool.addr()),
    ] {
        // One direct reference stream per script, shared by every strategy.
        let direct: Vec<Vec<u8>> = scripts()
            .iter()
            .map(|s| normalize(&replay(backend, s)))
            .collect();
        for strategy in Strategy::ALL {
            let front = BalancerFront::start(vec![backend], strategy);
            for (script, reference) in scripts().iter().zip(&direct) {
                let through = normalize(&replay(front.addr, script));
                assert_eq!(
                    statuses(&through),
                    script.expect,
                    "{who}/{}/{}: status sequence through the balancer",
                    strategy.label(),
                    script.name
                );
                assert_eq!(
                    &through,
                    reference,
                    "{who}/{}/{}: balancer changed bytes on the wire",
                    strategy.label(),
                    script.name
                );
            }
            front.shutdown();
        }
    }

    handoff.shutdown();
    sharded.shutdown();
    pool.shutdown();
}

#[test]
fn slot_reuse_churn_is_wire_equivalent_across_accept_modes() {
    // Churn angle on equivalence: waves of short-lived connections force
    // the workers' connection slab to recycle slots aggressively — the
    // LIFO free list hands each sequential connection the slot its
    // predecessor just vacated, and concurrent waves spread reuse across
    // many slots at once. A reused slot must serve its new connection
    // exactly like a fresh one: no state bleed from the previous occupant,
    // no aliased teardown, and byte-identical streams on both accept modes.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));
    let handoff = start_nio(nioserver::AcceptMode::Handoff, nioserver::BackendKind::Epoll, &content);
    let sharded = start_nio(nioserver::AcceptMode::Sharded, nioserver::BackendKind::Epoll, &content);

    fn churn_script(i: usize) -> Script {
        Script {
            name: "churn",
            steps: vec![Step::Send(concat_requests(&[
                &format!("GET /f/{} HTTP/1.1\r\nHost: sut\r\n\r\n", i % 8),
                "GET /f/9 HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n",
            ]))],
            expect: vec![200, 200],
        }
    }

    for (who, addr) in [("handoff", handoff.addr()), ("sharded", sharded.addr())] {
        // References on fresh slots, one per distinct request shape.
        let reference: Vec<Vec<u8>> = (0..8)
            .map(|i| normalize(&replay(addr, &churn_script(i))))
            .collect();
        for r in &reference {
            assert_eq!(statuses(r), vec![200, 200], "{who}: churn reference");
        }
        // Sequential churn: each close frees the slot the next connect
        // reuses, so one slot cycles through many generations.
        for i in 0..24 {
            let got = normalize(&replay(addr, &churn_script(i)));
            assert_eq!(
                got,
                reference[i % 8],
                "{who}: sequential churn conn {i} diverged on a reused slot"
            );
        }
        // Concurrent waves: a batch of live connections, all closed, then
        // the next batch lands on the freed slots.
        for wave in 0..3 {
            let workers: Vec<_> = (0..12)
                .map(|i| {
                    std::thread::spawn(move || (i, replay(addr, &churn_script(i))))
                })
                .collect();
            for w in workers {
                let (i, raw) = w.join().expect("churn client");
                assert_eq!(
                    normalize(&raw),
                    reference[i % 8],
                    "{who}: wave {wave} conn {i} diverged on a reused slot"
                );
            }
        }
    }

    handoff.shutdown();
    sharded.shutdown();
}

#[test]
fn sharded_mode_is_wire_equivalent_across_many_connections() {
    // A second angle on equivalence: the same pipelined burst replayed on
    // eight fresh connections against the sharded server (so multiple
    // shards serve it) yields eight identical normalized streams — shard
    // identity must never leak into the bytes.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));
    let sharded = start_nio(nioserver::AcceptMode::Sharded, nioserver::BackendKind::Epoll, &content);
    let script = Script {
        name: "per_shard_burst",
        steps: vec![Step::Send(concat_requests(&[
            "GET /f/5 HTTP/1.1\r\nHost: sut\r\n\r\n",
            "GET /f/6 HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n",
        ]))],
        expect: vec![200, 200],
    };
    let reference = normalize(&replay(sharded.addr(), &script));
    assert_eq!(statuses(&reference), script.expect);
    for i in 0..8 {
        let next = normalize(&replay(sharded.addr(), &script));
        assert_eq!(reference, next, "connection {i} diverged");
    }
    sharded.shutdown();
}

/// SO_LINGER(0) so the drop below sends RST instead of FIN — the abortive
/// client the conformance model calls `Terminal::Reset`.
fn set_linger_zero(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            sockfd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    let val = Linger { l_onoff: 1, l_linger: 0 };
    let r = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            1,  // SOL_SOCKET
            13, // SO_LINGER
            &val as *const Linger as *const _,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(r, 0, "SO_LINGER(0)");
}

#[test]
fn rst_after_partial_head_is_absorbed_identically() {
    // Promoted from the conformance corpus: a client sends half a request
    // head and aborts with RST. Every variant must clean the connection up
    // silently — no 408 rides the dead socket into a panic or a poisoned
    // slot — and a follow-up connection must be served exactly as if the
    // abort never happened, on every server, byte-identically.
    let fs = files();
    let content = Arc::new(ContentStore::from_fileset(&fs));
    let handoff = start_nio(nioserver::AcceptMode::Handoff, nioserver::BackendKind::Epoll, &content);
    let sharded = start_nio(nioserver::AcceptMode::Sharded, nioserver::BackendKind::Epoll, &content);
    let pool = poolserver::PoolServer::start(poolserver::PoolConfig {
        pool_size: 4,
        lifecycle: policy(),
        shed_watermark: None,
        content: Arc::clone(&content),
    })
    .expect("start pool server");

    let probe = Script {
        name: "post_rst_probe",
        steps: vec![Step::Send(concat_requests(&[
            "GET /f/3 HTTP/1.1\r\nHost: sut\r\nConnection: close\r\n\r\n",
        ]))],
        expect: vec![200],
    };
    let mut streams = Vec::new();
    for (who, addr) in [
        ("nio-handoff", handoff.addr()),
        ("nio-sharded", sharded.addr()),
        ("poolserver", pool.addr()),
    ] {
        for round in 0..4 {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).unwrap();
            let mut s = s;
            s.write_all(b"GET /f/0 HTTP/1.1\r\nHost: s").expect("partial head");
            // Give the server a chance to observe the partial head before
            // the abort, so the RST lands on a connection mid-parse.
            std::thread::sleep(Duration::from_millis(20));
            set_linger_zero(&s);
            drop(s);
            let raw = replay(addr, &probe);
            assert_eq!(
                statuses(&raw),
                probe.expect,
                "{who}: probe after RST round {round}"
            );
            streams.push((who, normalize(&raw)));
        }
    }
    // The post-abort probes agree byte-for-byte across all three servers.
    let reference = &streams[0].1;
    for (who, s) in &streams {
        assert_eq!(s, reference, "{who}: post-RST probe diverged on the wire");
    }

    handoff.shutdown();
    sharded.shutdown();
    pool.shutdown();
}
