//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot download the real criterion, so this shim
//! provides a compatible API surface (`Criterion`, benchmark groups,
//! `iter`/`iter_batched`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) backed by a simple wall-clock harness: each
//! benchmark is warmed up briefly, then timed over a fixed wall budget, and
//! the mean ns/iter is printed. No statistics, plots, or baselines — the
//! benches exist to exercise and roughly time hot paths, and the `repro`
//! binary remains the source of truth for figures.

use std::time::{Duration, Instant};

/// Controls how `iter_batched` amortises setup. The shim runs one routine
/// call per setup call regardless; the variants exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total measured time across all iterations.
    elapsed: Duration,
    /// Number of iterations measured.
    iters: u64,
    /// Wall budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Time `routine` repeatedly until the wall budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup call outside the measurement.
        std::hint::black_box(routine());
        let loop_start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if loop_start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let loop_start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if loop_start.elapsed() >= self.budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let human = if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} µs", ns / 1e3)
        } else {
            format!("{ns:.1} ns")
        };
        println!("{name:<48} {human:>12}/iter  ({} iters)", self.iters);
    }
}

/// Top-level harness. `Default` gives a short per-bench wall budget suitable
/// for smoke-timing; `CRITERION_BUDGET_MS` overrides it.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(&name);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's budget is wall-clock, not
    /// sample-count based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.budget = t;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b, input);
        b.report(&full);
        self
    }

    pub fn finish(self) {}
}

/// Build a function that runs each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn iter_counts_iterations() {
        let mut c = tiny();
        c.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64 * 7)));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| std::hint::black_box(x + 1))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("epoll", 64).id, "epoll/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
