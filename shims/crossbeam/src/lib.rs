//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment cannot reach a crates.io registry, so this shim
//! provides the subset of `crossbeam::channel` the workspace uses — an
//! unbounded MPSC channel with `send` / `try_recv` / `recv` — implemented
//! over `std::sync::mpsc`. The acceptor/worker handoff in `nioserver` is
//! strictly single-producer single-consumer per channel, so std's channel
//! is a faithful replacement.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_try_recv_round_trip() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Empty)
        ));
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(rx.try_recv().unwrap(), 8);
    }

    #[test]
    fn disconnect_is_visible() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = channel::unbounded::<u32>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
