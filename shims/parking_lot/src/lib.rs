//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a crates.io registry, so
//! external dependencies cannot be downloaded. This shim implements the
//! (tiny) subset of the `parking_lot` API the workspace actually uses — a
//! `Mutex` whose `lock()` returns the guard directly, without the poisoning
//! `Result` of `std::sync::Mutex` — on top of the standard library.
//!
//! Semantics match what callers rely on: `lock()` never fails; if a holder
//! panicked, the next locker simply proceeds (parking_lot has no poisoning).

use std::sync::MutexGuard as StdGuard;

/// A mutex that does not poison: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A poisoned inner lock
    /// (previous holder panicked) is treated as released, matching
    /// parking_lot's no-poisoning contract.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII guard; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
