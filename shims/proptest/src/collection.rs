//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s of `elem` with length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// `vec(element_strategy, len_range)` — lengths are uniform in the
/// half-open range, matching proptest's `SizeRange` semantics for `a..b`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_bounds() {
        let mut rng = TestRng::new(3);
        let s = vec(0u64..10, 1..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_tuples_work() {
        let mut rng = TestRng::new(4);
        let s = vec((0u64..5, crate::strategy::any::<bool>()), 2..4);
        let v = s.sample(&mut rng);
        assert!((2..4).contains(&v.len()));
    }
}
