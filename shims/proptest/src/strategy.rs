//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically samples a value from a [`TestRng`]. The
//! implementations cover exactly what the workspace's tests use: integer and
//! float ranges, `any::<T>()`, tuples of strategies, and (via the `string`
//! module) `&str` regex-subset patterns.

use crate::test_runner::TestRng;
use std::ops::Range;

/// Something that can produce random values of a fixed type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty as $wide:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i8 as i64, i16 as i64, i32 as i64, i64 as i128);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $ty;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Marker returned by [`any`]; generation is delegated to [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain generation for a type.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_from_u64 {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes — more useful to
        // property tests than raw bit patterns full of NaNs.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+ ))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_u64_range_does_not_overflow() {
        let mut rng = TestRng::new(9);
        let s = 1u64..u64::MAX;
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((1..u64::MAX).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::new(10);
        let s = -5i64..5;
        let mut saw_neg = false;
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((-5..5).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg);
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = TestRng::new(11);
        assert_eq!(Just(42u32).sample(&mut rng), 42);
    }
}
