//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network path to a crates.io registry, so the
//! real proptest cannot be downloaded. This shim reimplements the subset the
//! workspace's property tests use — the `proptest!` macro, range / `any` /
//! tuple / vec / string-pattern strategies, `prop_assert!` — with a
//! deterministic per-test RNG. It does not shrink failures; a failing case
//! panics with the ordinary assert message, which is enough for CI gating.
//!
//! Determinism: each test function derives its RNG seed from its own name,
//! so runs are reproducible across processes and machines.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

/// Define property tests. Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn name(a in strategy, b in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The body runs in a closure returning Result, so tests may
                // early-`return Err(TestCaseError::fail(..))` like with the
                // real proptest; asserts panic directly either way.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!("property {} failed on case {}: {}", stringify!($name), __case, __e);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Assert within a property test. No shrinking: forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when a precondition does not hold. The case body
/// runs in a `Result` closure, so assuming out just returns `Ok` early.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -2.0f64..3.0, z in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2.0..3.0).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn tuples_compose(pair in (0u64..100, crate::strategy::any::<bool>())) {
            prop_assert!(pair.0 < 100);
            let _: bool = pair.1;
        }

        #[test]
        fn charclass_pattern_matches(s in "[a-z0-9/._-]{1,40}") {
            prop_assert!(!s.is_empty() && s.len() <= 40);
            prop_assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || "/._-".contains(c)));
        }

        #[test]
        fn printable_pattern_has_no_controls(s in "\\PC*") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_cases_applies(_x in 0u8..1) {
            // Runs exactly 3 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
