//! String strategies from regex-subset patterns.
//!
//! Real proptest interprets a `&str` strategy as a full regex. The shim
//! supports the exact pattern shapes used in this workspace:
//!
//! * `[class]{m,n}` / `[class]{n}` / `[class]*` / `[class]+` — a single
//!   character class (literals and `a-z` ranges) with a repetition.
//! * `\PC*` / `\PC+` / `\PC{m,n}` — "not a control character": printable
//!   chars drawn from ASCII plus a sprinkle of multi-byte code points, which
//!   is what the JSON-escaping tests need to exercise.
//!
//! Anything else panics loudly so a new test knows to extend this module.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, reps) = parse_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern strategy: {self:?}"));
        let span = (reps.1 - reps.0 + 1) as u64;
        let len = reps.0 + rng.below(span) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Printable sample space for `\PC`: dense ASCII coverage (so quotes and
/// backslashes show up often) plus multi-byte and astral code points.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    chars.extend(['é', 'ß', 'λ', 'Ж', '中', '日', '…', '€', '\u{00a0}', '😀', '🦀']);
    chars
}

/// Returns (alphabet, (min_reps, max_reps)) or None if unsupported.
fn parse_pattern(pat: &str) -> Option<(Vec<char>, (usize, usize))> {
    let rest = if let Some(r) = pat.strip_prefix("\\PC") {
        return Some((printable_alphabet(), parse_reps(r)?));
    } else {
        pat.strip_prefix('[')?
    };
    let close = rest.find(']')?;
    let class = &rest[..close];
    let reps = parse_reps(&rest[close + 1..])?;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, reps))
}

/// Parse a repetition suffix: `{m,n}`, `{n}`, `*`, `+`, or empty (one).
fn parse_reps(s: &str) -> Option<(usize, usize)> {
    match s {
        "" => Some((1, 1)),
        "*" => Some((0, 48)),
        "+" => Some((1, 48)),
        _ => {
            let body = s.strip_prefix('{')?.strip_suffix('}')?;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                (lo <= hi).then_some((lo, hi))
            } else {
                let n: usize = body.trim().parse().ok()?;
                Some((n, n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_parses() {
        let (alphabet, reps) = parse_pattern("[a-c_.]{2,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '_', '.']);
        assert_eq!(reps, (2, 5));
    }

    #[test]
    fn star_and_plus_reps() {
        assert_eq!(parse_reps("*").unwrap().0, 0);
        assert_eq!(parse_reps("+").unwrap().0, 1);
        assert_eq!(parse_reps("{7}").unwrap(), (7, 7));
    }

    #[test]
    fn printable_pattern_samples_quotes_eventually() {
        let mut rng = TestRng::new(5);
        let mut saw_quote = false;
        let mut saw_backslash = false;
        for _ in 0..200 {
            let s = Strategy::sample(&"\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_quote |= s.contains('"');
            saw_backslash |= s.contains('\\');
        }
        assert!(saw_quote && saw_backslash, "escape-relevant chars must appear");
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unknown_pattern_is_loud() {
        let mut rng = TestRng::new(6);
        let _ = Strategy::sample(&"(a|b)+", &mut rng);
    }
}
