//! Deterministic RNG and per-test configuration.

/// A failed (or rejected) test case, for bodies that return `Result`
/// instead of asserting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: format!("rejected: {}", reason.into()),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the workspace's properties
        // exercise whole simulations per case, so a smaller default keeps
        // `cargo test -q` within CI budgets while still sweeping inputs.
        ProptestConfig { cases: 64 }
    }
}

/// splitmix64: tiny, full-period, statistically adequate for test-input
/// generation (the simulator's own `desim::Rng` is the one with quality
/// requirements; this one just has to be deterministic and well-spread).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from the test function's name so every run of
    /// the suite sees the same inputs (FNV-1a over the name bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero. Uses rejection
    /// sampling to avoid modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_covers_range_without_bias_blowups() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = TestRng::new(2);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
